"""EXPLAIN ANALYZE: per-plan-node runtime statistics for NRAe execution.

PR 2's spans and metrics say *where time goes* in the pipeline; this
module says *what each plan operator did*: how often it ran, how many
rows it consumed and produced, how long it took, and — for ``σ`` over
``×`` shapes — whether the join engine took the hash-join path or fell
back to the reference semantics (and why).  That is exactly the data a
cardinality-aware cost model needs, and :func:`calibration_report`
closes the loop by rank-correlating the structural
``size_depth_cost`` against the measured cardinalities.

Overhead discipline
-------------------

Unlike the PR 2 observer (a per-node ``is None`` guard), enabling
analysis *swaps the evaluator's dispatcher*: ``set_analyzer`` in
:mod:`repro.nraenv.eval` / :mod:`repro.nraenv.exec` rebinds the
module-global ``_eval`` between the untouched plain function and a
timing wrapper.  Disabled, the hot path is byte-for-byte the original
interpreter — zero added work, not even a branch — which is what lets
CI enforce a <3% off-path overhead bound
(``benchmarks/bench_analyze_overhead.py``).

Because the dispatcher is module-global state, analyzed executions are
serialized by a module lock (:func:`analyze_execution`).  The service
is unaffected: its non-analyzed queries run compiled NNRC callables
that never touch these dispatchers.

This module deliberately imports no AST classes at module level (the
evaluators import :mod:`repro.obs`, so importing them back here would
cycle); node structure is read by duck typing and the evaluator /
cost-model imports happen lazily inside functions.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

from repro.data.model import Bag
from repro.obs.context import current_query_id

#: Node-class name → (paper symbol, names of input-bag children).  The
#: "input" children are the ones whose output bag the node consumes
#: wholesale — the cardinality its stats report as ``in_rows``.  Bodies
#: and predicates run per-row and are not inputs in this sense.
_NODE_SHAPE = {
    "Const": ("$", ()),
    "ID": ("In", ()),
    "GetConstant": ("table", ()),
    "App": ("∘", ()),
    "Unop": ("⊞", ()),
    "Binop": ("⊞", ()),
    "Map": ("χ", ("input",)),
    "Select": ("σ", ("input",)),
    "Product": ("×", ("left", "right")),
    "DepJoin": ("⋈d", ("input",)),
    "Default": ("||", ()),
    "Env": ("Env", ()),
    "AppEnv": ("∘e", ()),
    "MapEnv": ("χe", ()),
}


def node_label(node) -> str:
    """A one-line operator label: paper symbol plus salient detail."""
    kind = type(node).__name__
    symbol = _NODE_SHAPE.get(kind, (kind, ()))[0]
    cname = getattr(node, "cname", None)
    if kind == "GetConstant" and cname is not None:
        return "table(%s)" % cname
    op = getattr(node, "op", None)
    if kind in ("Unop", "Binop") and op is not None:
        return type(op).__name__
    if kind == "Const":
        return "$%r" % (getattr(node, "value", None),)
    return symbol


def _input_children(node) -> Tuple[Any, ...]:
    """The children whose whole output bag this node consumes."""
    kind = type(node).__name__
    names = _NODE_SHAPE.get(kind, (kind, ()))[1]
    return tuple(getattr(node, name) for name in names)


class NodeStats(object):
    """Measured behaviour of one plan node across an execution.

    - ``calls`` — times the evaluator dispatched this node;
    - ``in_rows`` — total rows consumed from input-bag children (for
      ``σ``/``χ``/``⋈d`` their source, for ``×`` both sides; attributed
      by the collector when an input child's frame exits directly under
      this node's frame);
    - ``out_rows`` / ``out_bags`` / ``max_rows`` — total and peak
      cardinality of bag results (non-bag results leave these at 0);
    - ``seconds`` — inclusive wall time; ``self_seconds`` subtracts
      time spent in child frames;
    - ``hash_joins`` / ``group_bys`` / ``columnar`` / ``fallbacks`` —
      engine outcomes for this node: hash-join path taken, physical
      group-by taken, fused columnar pass taken, or reference fallback
      (``fallbacks`` maps reason → count);
    - ``errors`` — evaluations that raised.
    """

    __slots__ = (
        "node",
        "calls",
        "in_rows",
        "out_rows",
        "out_bags",
        "max_rows",
        "seconds",
        "child_seconds",
        "hash_joins",
        "group_bys",
        "columnar",
        "fallbacks",
        "errors",
        "input_ids",
    )

    def __init__(self, node):
        self.node = node
        self.calls = 0
        self.in_rows = 0
        self.out_rows = 0
        self.out_bags = 0
        self.max_rows = 0
        self.seconds = 0.0
        self.child_seconds = 0.0
        self.hash_joins = 0
        self.group_bys = 0
        self.columnar = 0
        self.fallbacks: Dict[str, int] = {}
        self.errors = 0
        self.input_ids = frozenset(id(child) for child in _input_children(node))

    @property
    def self_seconds(self) -> float:
        return max(0.0, self.seconds - self.child_seconds)

    @property
    def mean_out_rows(self) -> float:
        return self.out_rows / self.out_bags if self.out_bags else 0.0

    def describe(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "label": node_label(self.node),
            "calls": self.calls,
            "in_rows": self.in_rows,
            "out_rows": self.out_rows,
            "max_rows": self.max_rows,
            "seconds": self.seconds,
            "self_seconds": self.self_seconds,
        }
        if self.hash_joins:
            out["hash_joins"] = self.hash_joins
        if self.group_bys:
            out["group_bys"] = self.group_bys
        if self.columnar:
            out["columnar"] = self.columnar
        if self.fallbacks:
            out["fallbacks"] = dict(self.fallbacks)
        if self.errors:
            out["errors"] = self.errors
        return out


class AnalyzeCollector(object):
    """Receives evaluator enter/exit events and accumulates NodeStats.

    Keyed by ``id(node)``; the stats hold the node reference, which
    also pins the object alive so ids cannot be reused mid-run.  A
    frame stack attributes child output to the parent's ``in_rows``
    (only for children the parent consumes as input bags) and child
    time to the parent's ``child_seconds``.

    Not thread-safe by itself — :func:`analyze_execution` serializes
    analyzed executions under a module lock.
    """

    def __init__(self) -> None:
        self.stats: Dict[int, NodeStats] = {}
        self._stack: List[NodeStats] = []

    # -- evaluator hooks ---------------------------------------------------

    def enter(self, node) -> NodeStats:
        stats = self.stats.get(id(node))
        if stats is None:
            stats = NodeStats(node)
            self.stats[id(node)] = stats
        stats.calls += 1
        self._stack.append(stats)
        return stats

    def exit(self, stats: NodeStats, elapsed: float, result) -> None:
        self._stack.pop()
        stats.seconds += elapsed
        if self._stack:
            parent = self._stack[-1]
            parent.child_seconds += elapsed
            if isinstance(result, Bag) and id(stats.node) in parent.input_ids:
                parent.in_rows += len(result)
        if isinstance(result, Bag):
            size = len(result)
            stats.out_bags += 1
            stats.out_rows += size
            if size > stats.max_rows:
                stats.max_rows = size

    def exit_error(self, stats: NodeStats, elapsed: float) -> None:
        self._stack.pop()
        stats.seconds += elapsed
        stats.errors += 1
        if self._stack:
            self._stack[-1].child_seconds += elapsed

    def on_join(self, node, reason: Optional[str]) -> None:
        """Join-engine outcome for a ``σ(×)`` node: hash join or fallback."""
        stats = self.stats.get(id(node))
        if stats is None:
            stats = NodeStats(node)
            self.stats[id(node)] = stats
        if reason is None:
            stats.hash_joins += 1
        else:
            stats.fallbacks[reason] = stats.fallbacks.get(reason, 0) + 1

    def on_group(self, node, reason: Optional[str]) -> None:
        """Group-by outcome for a candidate ``χ`` node: physical or fallback."""
        stats = self.stats.get(id(node))
        if stats is None:
            stats = NodeStats(node)
            self.stats[id(node)] = stats
        if reason is None:
            stats.group_bys += 1
        else:
            stats.fallbacks[reason] = stats.fallbacks.get(reason, 0) + 1

    def on_columnar(self, node, reason: Optional[str]) -> None:
        """Fused-columnar outcome for a chain root (or a join's σ node)."""
        stats = self.stats.get(id(node))
        if stats is None:
            stats = NodeStats(node)
            self.stats[id(node)] = stats
        if reason is None:
            stats.columnar += 1
        else:
            stats.fallbacks[reason] = stats.fallbacks.get(reason, 0) + 1

    def add_input(self, node, rows: int) -> None:
        """Credit input rows consumed outside the frame protocol (joins)."""
        stats = self.stats.get(id(node))
        if stats is not None:
            stats.in_rows += rows

    # -- derived views -----------------------------------------------------

    def stats_for(self, node) -> Optional[NodeStats]:
        return self.stats.get(id(node))

    def peak_rows(self) -> int:
        """The largest intermediate bag any node produced."""
        return max((s.max_rows for s in self.stats.values()), default=0)

    def join_engine(self) -> Dict[str, Any]:
        """Aggregate engine outcomes across all nodes, JSON-safe."""
        hash_joins = 0
        group_bys = 0
        columnar = 0
        fallbacks: Dict[str, int] = {}
        for stats in self.stats.values():
            hash_joins += stats.hash_joins
            group_bys += stats.group_bys
            columnar += stats.columnar
            for reason, count in stats.fallbacks.items():
                fallbacks[reason] = fallbacks.get(reason, 0) + count
        return {
            "hash_joins": hash_joins,
            "group_bys": group_bys,
            "columnar": columnar,
            "fallbacks": fallbacks,
        }

    def hot_operators(self, n: int = 3) -> List[Dict[str, Any]]:
        """The top-``n`` nodes by self time, as plain dicts."""
        ranked = sorted(self.stats.values(), key=lambda s: s.self_seconds, reverse=True)
        return [
            {
                "label": node_label(s.node),
                "self_seconds": s.self_seconds,
                "calls": s.calls,
                "out_rows": s.out_rows,
            }
            for s in ranked[:n]
        ]


#: Serializes analyzed executions: the analyzer is module-global state
#: in the evaluators, so two concurrent analyzed runs would interleave
#: their frame stacks.
_ANALYZE_LOCK = threading.Lock()


@contextmanager
def analyze_execution(collector: Optional[AnalyzeCollector] = None, engine: bool = True):
    """Run the body with EXPLAIN ANALYZE collection enabled.

    ``engine=True`` instruments :func:`repro.nraenv.exec.eval_fast`
    (which already covers the leaf nodes it delegates to the reference
    evaluator); ``engine=False`` instruments
    :func:`repro.nraenv.eval.eval_nraenv` instead.  Installing on both
    would double-count the delegated leaves, so exactly one dispatcher
    is swapped.

    Yields the collector.  Analyzed executions are serialized process-
    wide by a module lock (the analyzer is module-global evaluator
    state).  Concurrent *non-analyzed* work is only affected if it runs
    these same evaluators while the swap is live — the service's plain
    query path executes compiled NNRC callables and never does.
    """
    if engine:
        from repro.nraenv import exec as target
    else:
        from repro.nraenv import eval as target
    if collector is None:
        collector = AnalyzeCollector()
    with _ANALYZE_LOCK:
        target.set_analyzer(collector)
        try:
            yield collector
        finally:
            target.set_analyzer(None)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _ms(seconds: float) -> str:
    return "%.3f ms" % (seconds * 1e3)


def _node_annotation(stats: Optional[NodeStats]) -> str:
    from repro.nraenv.exec import FALLBACK_LABELS

    if stats is None or stats.calls == 0:
        return "(not executed)"
    parts = ["calls=%d" % stats.calls]
    if stats.in_rows:
        parts.append("in=%d" % stats.in_rows)
    if stats.out_bags:
        parts.append("out=%d" % stats.out_rows)
        if stats.calls > 1:
            parts.append("max=%d" % stats.max_rows)
    parts.append("time=%s" % _ms(stats.seconds))
    parts.append("self=%s" % _ms(stats.self_seconds))
    if stats.hash_joins:
        parts.append("hash join x%d" % stats.hash_joins)
    if stats.group_bys:
        parts.append("physical group-by x%d" % stats.group_bys)
    if stats.columnar:
        parts.append("fused columnar x%d" % stats.columnar)
    for reason, count in sorted(stats.fallbacks.items()):
        parts.append(
            "fallback: %dx %s" % (count, FALLBACK_LABELS.get(reason, reason))
        )
    if stats.errors:
        parts.append("errors=%d" % stats.errors)
    return "  ".join(parts)


def render_analyze(plan, collector: AnalyzeCollector) -> str:
    """The plan tree, one node per line, annotated with measured stats."""
    lines: List[str] = []

    def walk(node, depth: int) -> None:
        stats = collector.stats_for(node)
        annotation = _node_annotation(stats)
        label = node_label(node)
        lines.append("%s%-*s %s" % ("  " * depth, max(1, 30 - 2 * depth), label, annotation))
        for child in node.children():
            walk(child, depth + 1)

    walk(plan, 0)
    return "\n".join(lines) + "\n"


def calibration_report(plan, collector: AnalyzeCollector, cost_fn=None) -> str:
    """Structural cost vs measured cardinality, with a rank correlation.

    For every *executed* node the table shows the cost model's score for
    the node's subtree next to the measured total output rows; the
    Spearman rank correlation across those pairs summarizes how well
    the structural model orders operators by actual data volume (the
    paper's §6 admits the model is size+depth only — this report is the
    measuring stick a cardinality-aware replacement will be judged by).
    """
    from repro.optim.cost import node_costs, size_depth_cost, spearman_rank_correlation

    if cost_fn is None:
        cost_fn = size_depth_cost
    costs = node_costs(plan, cost_fn)
    rows: List[Tuple[str, int, NodeStats]] = []
    seen: set = set()
    for node in plan.walk():
        if id(node) in seen:
            continue  # optimizer-shared subtrees appear once per pair
        seen.add(id(node))
        stats = collector.stats_for(node)
        if stats is None or stats.calls == 0:
            continue
        rows.append((node_label(node), costs[id(node)], stats))
    lines = ["== Cost-model calibration (structural cost vs measured rows) =="]
    if not rows:
        lines.append("(no nodes executed)")
        return "\n".join(lines) + "\n"
    lines.append(
        "%-24s %12s %12s %12s" % ("operator", "cost", "out_rows", "self_ms")
    )
    for label, cost, stats in sorted(rows, key=lambda r: r[1], reverse=True):
        lines.append(
            "%-24s %12d %12d %12.3f"
            % (label[:24], cost, stats.out_rows, stats.self_seconds * 1e3)
        )
    xs = [float(cost) for _, cost, _ in rows]
    ys = [float(stats.out_rows) for _, _, stats in rows]
    rho = spearman_rank_correlation(xs, ys)
    if rho is None:
        lines.append("rank correlation: n/a (fewer than 2 distinct points)")
    else:
        lines.append("rank correlation (cost vs out_rows): ρ = %+.3f over %d nodes" % (rho, len(rows)))
    return "\n".join(lines) + "\n"


def analysis_summary(collector: AnalyzeCollector, plan=None) -> Dict[str, Any]:
    """A JSON-safe digest: peak cardinality, hottest operators, node count.

    With ``plan`` given, also includes the rendered tree (one string) —
    the wire-level ``execute {"analyze": true}`` response uses this.
    Inside a service request the digest carries the request's
    ``query_id``, so an archived analyze report joins against the
    telemetry record, query-log audit event, and kept trace fragment
    for the same execution.
    """
    summary: Dict[str, Any] = {
        "peak_rows": collector.peak_rows(),
        "hot": collector.hot_operators(),
        "nodes": len(collector.stats),
        "join_engine": collector.join_engine(),
    }
    query_id = current_query_id()
    if query_id is not None:
        summary["query_id"] = query_id
    if plan is not None:
        summary["tree"] = render_analyze(plan, collector)
    return summary


def analyze_json(plan, collector: AnalyzeCollector) -> Dict[str, Any]:
    """The annotated plan tree as nested JSON-safe dicts.

    The machine-readable twin of :func:`render_analyze`: one dict per
    plan node with the operator label, the measured stats (``None`` for
    nodes that never executed), and the node's children in plan order —
    what ``repro explain --analyze --format json`` emits for the query
    log and external tooling.
    """
    def walk(node) -> Dict[str, Any]:
        stats = collector.stats_for(node)
        return {
            "label": node_label(node),
            "stats": stats.describe() if stats is not None and stats.calls else None,
            "children": [walk(child) for child in node.children()],
        }

    return walk(plan)


def calibration_data(plan, collector: AnalyzeCollector, cost_fn=None) -> Dict[str, Any]:
    """The cost-model calibration as JSON-safe data.

    The machine-readable twin of :func:`calibration_report`: per
    executed node the structural cost, measured output rows, and self
    time, plus the tie-averaged Spearman ρ over the (cost, out_rows)
    pairs (``None`` with fewer than two distinct points).
    """
    from repro.optim.cost import node_costs, size_depth_cost, spearman_rank_correlation

    if cost_fn is None:
        cost_fn = size_depth_cost
    costs = node_costs(plan, cost_fn)
    rows: List[Dict[str, Any]] = []
    seen: set = set()
    for node in plan.walk():
        if id(node) in seen:
            continue
        seen.add(id(node))
        stats = collector.stats_for(node)
        if stats is None or stats.calls == 0:
            continue
        rows.append(
            {
                "operator": node_label(node),
                "cost": costs[id(node)],
                "out_rows": stats.out_rows,
                "self_seconds": stats.self_seconds,
            }
        )
    xs = [float(row["cost"]) for row in rows]
    ys = [float(row["out_rows"]) for row in rows]
    return {
        "rows": sorted(rows, key=lambda row: row["cost"], reverse=True),
        "spearman_rho": spearman_rank_correlation(xs, ys),
    }
