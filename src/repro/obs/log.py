"""The structured query log: JSON-lines events with bounded rotation.

Telemetry rings and metrics live in process memory and die with it;
the query log is the *durable* half of observability — one JSON object
per line, appended as queries complete, so a service crash still leaves
the evidence on disk and external tooling (or the experiment harness)
can replay what happened.  Three event kinds are emitted by the service
(:meth:`repro.service.service.QueryService._finish_query`):

- ``query`` — the audit event, one per execute: ``query_id``, handle,
  language, cache hit, compile/execute seconds, row count, outcome
  (plus join-engine counters when the execution was analyzed);
- ``error`` — a failed execute, with the error kind and message;
- ``slow_query`` — an execute that crossed the slow-query threshold.

Every event gets a wall-clock ``ts`` (ISO-8601 UTC) stamped at emit
time; the ``query_id`` matches the telemetry record and any kept trace
fragment for the same request, which is what makes the log joinable
with the in-memory views.

Rotation is size-bounded, not time-bounded: when the active file would
exceed ``max_bytes`` the writer renames ``path`` → ``path.1`` (shifting
existing backups up, discarding the oldest beyond ``backups``), so the
total footprint is capped at roughly ``(backups + 1) * max_bytes`` no
matter how long the service runs.  :func:`read_events` is the reader
API: it walks the rotated generations oldest-first and yields parsed
events, skipping any torn trailing line a crash may have left.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from datetime import datetime, timezone
from typing import Any, Dict, Iterator, List, Optional


def _timestamp(now: Optional[float] = None) -> str:
    """Wall-clock time as ISO-8601 UTC with millisecond precision."""
    if now is None:
        now = time.time()
    stamp = datetime.fromtimestamp(now, tz=timezone.utc)
    return stamp.isoformat(timespec="milliseconds").replace("+00:00", "Z")


class QueryLog:
    """A thread-safe JSON-lines event writer with size-bounded rotation.

    One :meth:`emit` call appends one line and flushes it (a crash loses
    at most the event being written).  Events must be JSON-serializable
    plain data; non-serializable values are ``repr()``-ed rather than
    poisoning the log.
    """

    def __init__(self, path: str, max_bytes: int = 10_000_000, backups: int = 3):
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive, got %d" % max_bytes)
        if backups < 0:
            raise ValueError("backups cannot be negative, got %d" % backups)
        self.path = path
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        self._handle: Optional[io.TextIOBase] = open(path, "a", encoding="utf-8")
        self._size = self._handle.tell()
        self._emitted = 0
        self._rotations = 0

    def emit(self, event: Dict[str, Any]) -> Dict[str, Any]:
        """Stamp, serialize, and append one event; returns the stamped dict."""
        stamped = dict(event)
        stamped.setdefault("ts", _timestamp())
        try:
            line = json.dumps(stamped, sort_keys=True)
        except (TypeError, ValueError):
            stamped = {
                key: value
                if isinstance(value, (str, int, float, bool, type(None)))
                else repr(value)
                for key, value in stamped.items()
            }
            line = json.dumps(stamped, sort_keys=True)
        encoded = line + "\n"
        with self._lock:
            if self._handle is None:
                raise ValueError("query log %r is closed" % (self.path,))
            if self._size and self._size + len(encoded) > self.max_bytes:
                self._rotate_locked()
            self._handle.write(encoded)
            self._handle.flush()
            self._size += len(encoded)
            self._emitted += 1
        return stamped

    def _rotate_locked(self) -> None:
        self._handle.close()
        if self.backups == 0:
            os.remove(self.path)
        else:
            oldest = "%s.%d" % (self.path, self.backups)
            if os.path.exists(oldest):
                os.remove(oldest)
            for index in range(self.backups - 1, 0, -1):
                source = "%s.%d" % (self.path, index)
                if os.path.exists(source):
                    os.replace(source, "%s.%d" % (self.path, index + 1))
            os.replace(self.path, self.path + ".1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self._rotations += 1

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "path": self.path,
                "max_bytes": self.max_bytes,
                "backups": self.backups,
                "emitted": self._emitted,
                "rotations": self._rotations,
            }

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "QueryLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _generations(path: str, backups: Optional[int] = None) -> List[str]:
    """Existing log files for ``path``, oldest generation first."""
    if backups is None:
        backups = 0
        while os.path.exists("%s.%d" % (path, backups + 1)):
            backups += 1
    files = []
    for index in range(backups, 0, -1):
        candidate = "%s.%d" % (path, index)
        if os.path.exists(candidate):
            files.append(candidate)
    if os.path.exists(path):
        files.append(path)
    return files


def iter_events(path: str, include_rotated: bool = True) -> Iterator[Dict[str, Any]]:
    """Yield parsed events, oldest first, across rotated generations.

    A torn final line (a crash mid-write) is skipped rather than raised:
    the reader's job is recovering evidence, not validating the writer.
    """
    files = _generations(path) if include_rotated else ([path] if os.path.exists(path) else [])
    for name in files:
        with open(name, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if isinstance(event, dict):
                    yield event


def read_events(path: str, include_rotated: bool = True) -> List[Dict[str, Any]]:
    """All events for ``path`` as a list (see :func:`iter_events`)."""
    return list(iter_events(path, include_rotated=include_rotated))


__all__ = ["QueryLog", "iter_events", "read_events"]
