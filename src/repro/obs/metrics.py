"""Metrics registry: counters, gauges, and histograms.

The companion to :mod:`repro.obs.trace` — spans say *where time went*,
metrics say *how much work happened*: operator-application counts in
the evaluators, per-rule fire/attempt tallies in the optimizer,
intermediate bag-size distributions in the runtime.

The same disabled-overhead discipline applies: the default global
registry is :data:`NULL_METRICS`, whose instruments are shared no-op
objects, and the evaluators additionally guard their hooks behind a
single ``is None`` check (see :func:`repro.nraenv.eval.set_observer`)
so the uninstrumented paths stay within noise.

Histograms do not retain samples; they keep count/sum/min/max plus
power-of-two bucket counts, which is enough for the "intermediate bag
sizes" distributions (and interpolated p50/p95/p99 estimates) without
unbounded memory on large runs.

Instruments are thread-safe: the service's thread-pool executor hits
the same counters and histograms from many workers at once, and an
unguarded ``self.value += n`` loses updates under preemption.  Each
instrument carries its own lock; the disabled path (:data:`NULL_METRICS`)
stays lock-free.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Optional


class Counter(object):
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return "Counter(%s=%d)" % (self.name, self.value)


class Gauge(object):
    """A point-in-time value; ``track_max`` keeps a high-water mark."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self.value = value

    def track_max(self, value) -> None:
        with self._lock:
            if value > self.value:
                self.value = value

    def __repr__(self) -> str:
        return "Gauge(%s=%r)" % (self.name, self.value)


class Histogram(object):
    """A distribution summary with power-of-two buckets.

    Bucket ``k`` counts observations ``v`` with ``2**(k-1) < v <= 2**k``
    (bucket 0 counts ``v <= 1``, including zero and negatives).
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "buckets", "_lock")

    #: The quantiles rendered by reports and the Prometheus exporter.
    QUANTILES = (0.5, 0.95, 0.99)

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.buckets: Dict[int, int] = {}
        self._lock = threading.Lock()

    def record(self, value) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
            bucket = 0
            bound = 1
            while value > bound:
                bound <<= 1
                bucket += 1
            self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile from the power-of-two buckets.

        Walks the cumulative bucket counts to the one holding the target
        rank ``q * count`` and interpolates linearly inside it.  Bucket
        bounds are clamped to the observed ``[min, max]`` so estimates
        never stray outside the recorded range (bucket 0 would otherwise
        have an unbounded lower edge, and the top bucket's upper power of
        two can be far past the true maximum).  Returns ``None`` when
        nothing has been recorded.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got %r" % (q,))
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for bucket, tally in sorted(self.buckets.items()):
            if cumulative + tally < target:
                cumulative += tally
                continue
            lower = float(1 << (bucket - 1)) if bucket > 0 else float(self.minimum)
            upper = float(1 << bucket) if bucket > 0 else 1.0
            lower = max(lower, float(self.minimum))
            upper = min(upper, float(self.maximum))
            if upper <= lower or tally == 0:
                return min(max(lower, float(self.minimum)), float(self.maximum))
            fraction = (target - cumulative) / tally
            estimate = lower + fraction * (upper - lower)
            return min(max(estimate, float(self.minimum)), float(self.maximum))
        return float(self.maximum)

    def quantiles(self) -> Dict[float, Optional[float]]:
        """The standard report quantiles (:data:`QUANTILES`) as a dict."""
        return {q: self.quantile(q) for q in self.QUANTILES}

    def merge(self, delta: Dict[str, Any]) -> None:
        """Fold a summary-shaped delta (from another process) into this
        histogram.

        ``delta`` carries ``count``/``sum``/``min``/``max`` plus a
        power-of-two ``buckets`` map — the shape
        :func:`snapshot_delta` produces and :meth:`summary` reports.
        Buckets merge by bucket-wise sum, ``count``/``sum`` add, and
        ``min``/``max`` combine, so a histogram built by merging
        per-worker deltas is *sample-equivalent* to one histogram that
        recorded every observation directly: identical count, sum,
        bucket counts, extrema — and therefore identical interpolated
        p50/p95/p99 (the property tests in
        ``tests/obs/test_metrics_merge.py`` pin this down).  Bucket keys
        are accepted as ints or strings (JSON round trips stringify
        them).
        """
        count = int(delta.get("count") or 0)
        if count <= 0:
            return
        with self._lock:
            self.count += count
            self.total += delta.get("sum") or 0
            low = delta.get("min")
            if low is not None and (self.minimum is None or low < self.minimum):
                self.minimum = low
            high = delta.get("max")
            if high is not None and (self.maximum is None or high > self.maximum):
                self.maximum = high
            for bucket, tally in (delta.get("buckets") or {}).items():
                bucket = int(bucket)
                self.buckets[bucket] = self.buckets.get(bucket, 0) + tally

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": dict(sorted(self.buckets.items())),
        }

    def __repr__(self) -> str:
        return "Histogram(%s, n=%d, mean=%.2f)" % (self.name, self.count, self.mean)


class MetricsRegistry(object):
    """Named instruments, created on first use and queryable afterwards."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(name, Histogram(name))

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as plain data (JSON-serializable)."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.summary() for name, h in sorted(self._histograms.items())},
        }

    def apply_delta(self, delta: Dict[str, Any]) -> None:
        """Fold a :func:`snapshot_delta` document into this registry.

        The leader's fleet aggregation uses this: each worker ships the
        delta of its own registry since the last shipment, and applying
        deltas in arrival order reconstructs the worker's registry
        exactly (counters sum, gauges last-write-wins, histograms merge
        sample-equivalently via :meth:`Histogram.merge`).
        """
        for name, value in (delta.get("counters") or {}).items():
            if value:
                self.counter(name).inc(value)
        for name, value in (delta.get("gauges") or {}).items():
            self.gauge(name).set(value)
        for name, summary in (delta.get("histograms") or {}).items():
            self.histogram(name).merge(summary)

    def __repr__(self) -> str:
        return "MetricsRegistry(%d counters, %d gauges, %d histograms)" % (
            len(self._counters),
            len(self._gauges),
            len(self._histograms),
        )


def snapshot_delta(
    previous: Dict[str, Dict[str, Any]], current: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """The change between two registry snapshots, as a mergeable delta.

    This is the worker side of the delta-metrics contract (DESIGN.md
    §15): a worker snapshots its registry after each request, diffs
    against the last shipped snapshot, and piggybacks the (usually tiny)
    delta on the wire reply.  Counters diff numerically; gauges ship
    their current value (the leader treats them last-write-wins);
    histograms diff ``count``/``sum`` and bucket-wise counts.  A
    histogram delta's ``min``/``max`` are the *lifetime* extrema — safe
    because the leader combines extrema with min/max, and a worker's
    lifetime extremum is by definition the extremum of all deltas it
    ever shipped.  Instruments with no change are omitted, so an idle
    worker's delta is three empty maps.
    """
    prev_counters = previous.get("counters", {})
    counters = {
        name: value - prev_counters.get(name, 0)
        for name, value in current.get("counters", {}).items()
        if value != prev_counters.get(name, 0)
    }
    prev_gauges = previous.get("gauges", {})
    gauges = {
        name: value
        for name, value in current.get("gauges", {}).items()
        if value != prev_gauges.get(name)
    }
    histograms: Dict[str, Any] = {}
    prev_histograms = previous.get("histograms", {})
    for name, summary in current.get("histograms", {}).items():
        before = prev_histograms.get(name)
        prev_count = before["count"] if before else 0
        if summary["count"] == prev_count:
            continue
        prev_buckets = before["buckets"] if before else {}
        buckets = {
            bucket: tally - prev_buckets.get(bucket, 0)
            for bucket, tally in summary["buckets"].items()
            if tally != prev_buckets.get(bucket, 0)
        }
        histograms[name] = {
            "count": summary["count"] - prev_count,
            "sum": summary["sum"] - (before["sum"] if before else 0),
            "min": summary["min"],
            "max": summary["max"],
            "buckets": buckets,
        }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def delta_is_empty(delta: Dict[str, Any]) -> bool:
    """True when a :func:`snapshot_delta` document carries no change."""
    return not (
        delta.get("counters") or delta.get("gauges") or delta.get("histograms")
    )


class RateRing(object):
    """A sliding-window QPS/latency ring: one bucket per second.

    ``window`` one-second buckets indexed by ``int(now) % window``; a
    bucket is lazily reset when its stored epoch second goes stale, so
    there is no background thread and memory is a fixed ``window``-sized
    array no matter how long the service runs.  :meth:`snapshot`
    aggregates the buckets still inside the asked-for window into
    request rate and latency figures — the data behind the obs
    endpoint's ``/stats``.

    ``now`` parameters exist for deterministic tests; production calls
    leave them to ``time.time()``.  Thread-safe (one lock; observations
    are O(1)).
    """

    __slots__ = ("window", "_buckets", "_lock")

    def __init__(self, window: int = 60):
        if window < 1:
            raise ValueError("rate window must be positive, got %d" % window)
        self.window = window
        # bucket = [epoch_second, count, total_seconds, max_seconds]
        self._buckets = [[-1, 0, 0.0, 0.0] for _ in range(window)]
        self._lock = threading.Lock()

    def observe(self, seconds: float, now: Optional[float] = None) -> None:
        """Record one completed request with the given latency."""
        epoch = int(time.time() if now is None else now)
        bucket = self._buckets[epoch % self.window]
        with self._lock:
            if bucket[0] != epoch:
                bucket[0] = epoch
                bucket[1] = 0
                bucket[2] = 0.0
                bucket[3] = 0.0
            bucket[1] += 1
            bucket[2] += seconds
            if seconds > bucket[3]:
                bucket[3] = seconds

    def snapshot(self, window: Optional[int] = None, now: Optional[float] = None) -> Dict[str, Any]:
        """Rate and latency over the trailing ``window`` seconds.

        The current (partial) second is included; buckets whose epoch
        fell out of the window are ignored even though they still sit in
        the array — that is the lazy-reset contract.
        """
        if window is None:
            window = self.window
        window = max(1, min(window, self.window))
        epoch = int(time.time() if now is None else now)
        count = 0
        total = 0.0
        worst = 0.0
        with self._lock:
            for bucket in self._buckets:
                if epoch - window < bucket[0] <= epoch:
                    count += bucket[1]
                    total += bucket[2]
                    if bucket[3] > worst:
                        worst = bucket[3]
        return {
            "window_seconds": window,
            "count": count,
            "qps": count / float(window),
            "mean_latency_ms": (total / count) * 1e3 if count else 0.0,
            "max_latency_ms": worst * 1e3,
        }


class _NullInstrument(object):
    """One object standing in for disabled counters/gauges/histograms."""

    __slots__ = ()
    name = ""
    value = 0
    count = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def track_max(self, value) -> None:
        pass

    def record(self, value) -> None:
        pass

    def quantile(self, q: float) -> None:
        return None

    def quantiles(self) -> Dict[float, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics(object):
    """The disabled registry: instruments are shared no-ops."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The process-wide disabled registry (also the default global one).
NULL_METRICS = NullMetrics()

_current_metrics = NULL_METRICS


def get_metrics():
    """The active global registry (:data:`NULL_METRICS` unless installed)."""
    return _current_metrics


def set_metrics(metrics) -> None:
    """Install ``metrics`` globally; ``None`` restores the null registry."""
    global _current_metrics
    _current_metrics = metrics if metrics is not None else NULL_METRICS


@contextmanager
def use_metrics(metrics):
    """Scoped :func:`set_metrics`: restores the previous registry on exit."""
    previous = _current_metrics
    set_metrics(metrics)
    try:
        yield metrics
    finally:
        set_metrics(previous)


class EvalObserver(object):
    """Adapter the evaluators call into; writes to a registry.

    Installed via ``set_observer`` on :mod:`repro.nraenv.eval` /
    :mod:`repro.nnrc.eval`; collects

    - ``<prefix>.nodes.<NodeType>`` — operator-application counters,
    - ``<prefix>.bag_size`` — intermediate bag-size histogram,
    - ``<prefix>.max_env_depth`` — deepest environment seen (nested
      ``∘e`` frames for NRAe, bound-variable count for NNRC).
    """

    __slots__ = ("metrics", "prefix", "_node_counters", "_bag_hist", "_env_gauge", "_env_depth")

    def __init__(self, metrics: MetricsRegistry, prefix: str):
        self.metrics = metrics
        self.prefix = prefix
        self._node_counters: Dict[type, Any] = {}
        self._bag_hist = metrics.histogram(prefix + ".bag_size")
        self._env_gauge = metrics.gauge(prefix + ".max_env_depth")
        self._env_depth = 0

    def on_node(self, node) -> None:
        kind = type(node)
        counter = self._node_counters.get(kind)
        if counter is None:
            counter = self.metrics.counter("%s.nodes.%s" % (self.prefix, kind.__name__))
            self._node_counters[kind] = counter
        counter.inc()

    def on_bag(self, size: int) -> None:
        self._bag_hist.record(size)

    def enter_env(self) -> None:
        self._env_depth += 1
        self._env_gauge.track_max(self._env_depth)

    def exit_env(self) -> None:
        self._env_depth -= 1

    def on_env_depth(self, depth: int) -> None:
        self._env_gauge.track_max(depth)
