"""Abstract syntax for NNRC, the Named Nested Relational Calculus (§5).

::

    e ::= x | d | ⊙e1 | e1 ⊡ e2 | let x = e1 in e2
        | {e2 | x ∈ e1} | e1 ? e2 : e3

plus ``GetConstant`` for database constants, mirroring the algebra side.
NNRC is the gateway to the backends: the Python code generator consumes
optimized NNRC.

Variables are plain strings.  Expressions are immutable and compare
structurally (α-conversion is *not* built into equality; the optimizer
works up to literal names and generates fresh names when needed).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterator, Tuple

from repro.data.model import is_value
from repro.data.operators import BinaryOp, UnaryOp


class NnrcNode:
    """Base class for NNRC expressions."""

    __slots__ = ()

    def children(self) -> Tuple["NnrcNode", ...]:
        raise NotImplementedError

    def rebuild(self, children: Tuple["NnrcNode", ...]) -> "NnrcNode":
        raise NotImplementedError

    def _tag(self) -> Tuple[Any, ...]:
        return (type(self).__name__,)

    def __eq__(self, other: Any) -> bool:
        if type(self) is not type(other):
            return NotImplemented if not isinstance(other, NnrcNode) else False
        return self._tag() == other._tag() and self.children() == other.children()

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((self._tag(), self.children()))

    def __repr__(self) -> str:
        from repro.nnrc.pretty import pretty

        return pretty(self)

    def size(self) -> int:
        """Number of expression nodes (the quantity Figures 7a/8a/9c plot)."""
        return 1 + sum(child.size() for child in self.children())

    def depth(self) -> int:
        """Binder nesting depth (let/for/if levels)."""
        child_depths = [child.depth() for child in self.children()]
        deepest = max(child_depths) if child_depths else 0
        return deepest + (1 if isinstance(self, (Let, For, If)) else 0)

    def walk(self) -> Iterator["NnrcNode"]:
        yield self
        for child in self.children():
            for node in child.walk():
                yield node

    def transform_bottom_up(self, fn: Callable[["NnrcNode"], "NnrcNode"]) -> "NnrcNode":
        children = self.children()
        new_children = tuple(child.transform_bottom_up(fn) for child in children)
        # Identity (not structural) comparison: untouched subtrees come
        # back as the same objects, so an unchanged node costs O(arity)
        # — map(is_, …) keeps the check at C speed with no deep fallback.
        node = self if all(map(operator.is_, new_children, children)) else self.rebuild(new_children)
        return fn(node)


class Var(NnrcNode):
    """``x``: a variable occurrence."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def children(self) -> Tuple[NnrcNode, ...]:
        return ()

    def rebuild(self, children: Tuple[NnrcNode, ...]) -> NnrcNode:
        return self

    def _tag(self) -> Tuple[Any, ...]:
        return ("Var", self.name)


class Const(NnrcNode):
    """``d``: a constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        assert is_value(value), "Const requires a data-model value: %r" % (value,)
        self.value = value

    def children(self) -> Tuple[NnrcNode, ...]:
        return ()

    def rebuild(self, children: Tuple[NnrcNode, ...]) -> NnrcNode:
        return self

    def _tag(self) -> Tuple[Any, ...]:
        from repro.data.model import canonical_key

        return ("Const", canonical_key(self.value))


class GetConstant(NnrcNode):
    """Access to a named database constant (a table)."""

    __slots__ = ("cname",)

    def __init__(self, cname: str):
        self.cname = cname

    def children(self) -> Tuple[NnrcNode, ...]:
        return ()

    def rebuild(self, children: Tuple[NnrcNode, ...]) -> NnrcNode:
        return self

    def _tag(self) -> Tuple[Any, ...]:
        return ("GetConstant", self.cname)


class Unop(NnrcNode):
    """``⊙ e``."""

    __slots__ = ("op", "arg")

    def __init__(self, op: UnaryOp, arg: NnrcNode):
        self.op = op
        self.arg = arg

    def children(self) -> Tuple[NnrcNode, ...]:
        return (self.arg,)

    def rebuild(self, children: Tuple[NnrcNode, ...]) -> NnrcNode:
        return Unop(self.op, children[0])

    def _tag(self) -> Tuple[Any, ...]:
        return ("Unop", self.op)


class Binop(NnrcNode):
    """``e1 ⊡ e2``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: BinaryOp, left: NnrcNode, right: NnrcNode):
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Tuple[NnrcNode, ...]:
        return (self.left, self.right)

    def rebuild(self, children: Tuple[NnrcNode, ...]) -> NnrcNode:
        return Binop(self.op, *children)

    def _tag(self) -> Tuple[Any, ...]:
        return ("Binop", self.op)


class Let(NnrcNode):
    """``let x = defn in body``: dependent sequencing."""

    __slots__ = ("var", "defn", "body")

    def __init__(self, var: str, defn: NnrcNode, body: NnrcNode):
        self.var = var
        self.defn = defn
        self.body = body

    def children(self) -> Tuple[NnrcNode, ...]:
        return (self.defn, self.body)

    def rebuild(self, children: Tuple[NnrcNode, ...]) -> NnrcNode:
        return Let(self.var, *children)

    def _tag(self) -> Tuple[Any, ...]:
        return ("Let", self.var)


class For(NnrcNode):
    """``{body | x ∈ source}``: bag comprehension."""

    __slots__ = ("var", "source", "body")

    def __init__(self, var: str, source: NnrcNode, body: NnrcNode):
        self.var = var
        self.source = source
        self.body = body

    def children(self) -> Tuple[NnrcNode, ...]:
        return (self.source, self.body)

    def rebuild(self, children: Tuple[NnrcNode, ...]) -> NnrcNode:
        return For(self.var, *children)

    def _tag(self) -> Tuple[Any, ...]:
        return ("For", self.var)


class If(NnrcNode):
    """``cond ? then : else``."""

    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond: NnrcNode, then: NnrcNode, otherwise: NnrcNode):
        self.cond = cond
        self.then = then
        self.otherwise = otherwise

    def children(self) -> Tuple[NnrcNode, ...]:
        return (self.cond, self.then, self.otherwise)

    def rebuild(self, children: Tuple[NnrcNode, ...]) -> NnrcNode:
        return If(*children)
