"""Pretty-printer for NNRC expressions, in the paper's notation."""

from __future__ import annotations

from repro.nnrc import ast
from repro.nraenv.pretty import _BINOP_SYMBOLS, _value


def pretty(expr: ast.NnrcNode) -> str:
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Const):
        return _value(expr.value)
    if isinstance(expr, ast.GetConstant):
        return "$%s" % expr.cname
    if isinstance(expr, ast.Unop):
        from repro.data import operators as ops

        if isinstance(expr.op, ops.OpDot):
            return "%s.%s" % (pretty(expr.arg), expr.op.field)
        if isinstance(expr.op, ops.OpRec):
            return "[%s: %s]" % (expr.op.field, pretty(expr.arg))
        if isinstance(expr.op, ops.OpBag):
            return "{%s}" % pretty(expr.arg)
        return "%s(%s)" % (expr.op.name, pretty(expr.arg))
    if isinstance(expr, ast.Binop):
        symbol = _BINOP_SYMBOLS.get(type(expr.op), expr.op.name)
        return "(%s %s %s)" % (pretty(expr.left), symbol, pretty(expr.right))
    if isinstance(expr, ast.Let):
        return "let %s = %s in %s" % (expr.var, pretty(expr.defn), pretty(expr.body))
    if isinstance(expr, ast.For):
        return "{%s | %s ∈ %s}" % (pretty(expr.body), expr.var, pretty(expr.source))
    if isinstance(expr, ast.If):
        return "(%s ? %s : %s)" % (
            pretty(expr.cond),
            pretty(expr.then),
            pretty(expr.otherwise),
        )
    return "<%s>" % type(expr).__name__
