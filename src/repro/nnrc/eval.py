"""Operational semantics of NNRC with bag semantics ([34], used in §5)."""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.data.model import Bag, DataError
from repro.nnrc import ast
from repro.nraenv.eval import EvalError


#: Optional observability hook (see :mod:`repro.obs`); ``None`` keeps
#: the interpreter on its bare path.
_OBSERVER = None


def set_observer(observer) -> None:
    """Install (or with ``None``, remove) the evaluation observer.

    The observer receives ``on_node(expr)`` per node evaluated,
    ``on_bag(size)`` per comprehension source, and
    ``on_env_depth(len(env))`` whenever a binder grows the variable
    environment (its high-water mark is the deepest environment).
    """
    global _OBSERVER
    _OBSERVER = observer


def eval_nnrc(
    expr: ast.NnrcNode,
    env: Optional[Mapping[str, Any]] = None,
    constants: Optional[Mapping[str, Any]] = None,
) -> Any:
    """Evaluate an NNRC expression under a variable environment.

    ``env`` maps variable names to values; ``constants`` maps database
    constant names (tables) to values.
    """
    return _eval(expr, dict(env or {}), constants or {})


def _eval(expr: ast.NnrcNode, env: dict, constants: Mapping[str, Any]) -> Any:
    observer = _OBSERVER
    if observer is not None:
        observer.on_node(expr)
    if isinstance(expr, ast.Var):
        if expr.name not in env:
            raise EvalError("unbound NNRC variable %r" % expr.name)
        return env[expr.name]
    if isinstance(expr, ast.Const):
        return expr.value
    if isinstance(expr, ast.GetConstant):
        if expr.cname not in constants:
            raise EvalError("unknown database constant %r" % expr.cname)
        return constants[expr.cname]
    if isinstance(expr, ast.Unop):
        try:
            return expr.op.apply(_eval(expr.arg, env, constants))
        except DataError as exc:
            raise EvalError(str(exc)) from exc
    if isinstance(expr, ast.Binop):
        left = _eval(expr.left, env, constants)
        right = _eval(expr.right, env, constants)
        try:
            return expr.op.apply(left, right)
        except DataError as exc:
            raise EvalError(str(exc)) from exc
    if isinstance(expr, ast.Let):
        value = _eval(expr.defn, env, constants)
        inner = dict(env)
        inner[expr.var] = value
        if observer is not None:
            observer.on_env_depth(len(inner))
        return _eval(expr.body, inner, constants)
    if isinstance(expr, ast.For):
        source = _eval(expr.source, env, constants)
        if not isinstance(source, Bag):
            raise EvalError("comprehension source must be a bag, got %r" % (source,))
        if observer is not None:
            observer.on_bag(len(source))
            observer.on_env_depth(len(env) + 1)
        out = []
        inner = dict(env)
        for item in source:
            inner[expr.var] = item
            out.append(_eval(expr.body, inner, constants))
        return Bag(out)
    if isinstance(expr, ast.If):
        verdict = _eval(expr.cond, env, constants)
        if not isinstance(verdict, bool):
            raise EvalError("if condition returned non-boolean %r" % (verdict,))
        branch = expr.then if verdict else expr.otherwise
        return _eval(branch, env, constants)
    raise EvalError("unknown NNRC node %r" % (expr,))
