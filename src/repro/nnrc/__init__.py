"""NNRC: the Named Nested Relational Calculus (paper §5).

The calculus with variables that the algebra compiles into on its way to
code generation.
"""

from repro.nnrc.ast import (
    Binop,
    Const,
    For,
    GetConstant,
    If,
    Let,
    NnrcNode,
    Unop,
    Var,
)
from repro.nnrc.eval import eval_nnrc
from repro.nnrc.freevars import FreshNames, free_vars, substitute
from repro.nnrc.pretty import pretty

__all__ = [
    "Binop",
    "Const",
    "For",
    "FreshNames",
    "GetConstant",
    "If",
    "Let",
    "NnrcNode",
    "Unop",
    "Var",
    "eval_nnrc",
    "free_vars",
    "pretty",
    "substitute",
]
