"""Free variables, substitution, and fresh-name generation for NNRC.

Substitution is capture-avoiding: binders whose variable would capture a
free variable of the payload are renamed on the fly.  These utilities
back both the NRAe→NNRC translation (fresh-name discipline, Figure 5's
"x is fresh" side conditions) and the NNRC optimizer (let inlining).
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, Iterator, Set

from repro.nnrc import ast


def free_vars(expr: ast.NnrcNode) -> FrozenSet[str]:
    """The free variables of ``expr``."""
    if isinstance(expr, ast.Var):
        return frozenset([expr.name])
    if isinstance(expr, ast.Let):
        return free_vars(expr.defn) | (free_vars(expr.body) - {expr.var})
    if isinstance(expr, ast.For):
        return free_vars(expr.source) | (free_vars(expr.body) - {expr.var})
    out: Set[str] = set()
    for child in expr.children():
        out |= free_vars(child)
    return frozenset(out)


def bound_vars(expr: ast.NnrcNode) -> FrozenSet[str]:
    """Every variable bound anywhere in ``expr``."""
    out: Set[str] = set()
    for node in expr.walk():
        if isinstance(node, (ast.Let, ast.For)):
            out.add(node.var)
    return frozenset(out)


class FreshNames:
    """A generator of names avoiding a given set (Figure 5's "fresh")."""

    def __init__(self, avoid: Iterable[str] = (), prefix: str = "x"):
        self._avoid: Set[str] = set(avoid)
        self._prefix = prefix
        self._counter = itertools.count()

    def avoid(self, names: Iterable[str]) -> None:
        self._avoid.update(names)

    def fresh(self, hint: str = "") -> str:
        base = hint or self._prefix
        while True:
            name = "%s%d" % (base, next(self._counter))
            if name not in self._avoid:
                self._avoid.add(name)
                return name


def _fresh_like(name: str, avoid: Set[str]) -> str:
    for i in itertools.count():
        candidate = "%s_%d" % (name, i)
        if candidate not in avoid:
            return candidate
    raise AssertionError("unreachable")


def substitute(expr: ast.NnrcNode, var: str, payload: ast.NnrcNode) -> ast.NnrcNode:
    """``expr[payload/var]``, capture-avoiding."""
    payload_free = free_vars(payload)

    def go(node: ast.NnrcNode) -> ast.NnrcNode:
        if isinstance(node, ast.Var):
            return payload if node.name == var else node
        if isinstance(node, ast.Let):
            defn = go(node.defn)
            if node.var == var:
                return ast.Let(node.var, defn, node.body)
            if node.var in payload_free and var in free_vars(node.body):
                avoid = payload_free | free_vars(node.body) | {var}
                renamed = _fresh_like(node.var, set(avoid))
                body = substitute(node.body, node.var, ast.Var(renamed))
                return ast.Let(renamed, defn, go(body))
            return ast.Let(node.var, defn, go(node.body))
        if isinstance(node, ast.For):
            source = go(node.source)
            if node.var == var:
                return ast.For(node.var, source, node.body)
            if node.var in payload_free and var in free_vars(node.body):
                avoid = payload_free | free_vars(node.body) | {var}
                renamed = _fresh_like(node.var, set(avoid))
                body = substitute(node.body, node.var, ast.Var(renamed))
                return ast.For(renamed, source, go(body))
            return ast.For(node.var, source, go(node.body))
        children = tuple(go(child) for child in node.children())
        if children == node.children():
            return node
        return node.rebuild(children)

    return go(expr)


def rename_bound(expr: ast.NnrcNode, names: FreshNames) -> ast.NnrcNode:
    """α-rename every binder to a fresh name (normalises for comparison)."""
    if isinstance(expr, ast.Let):
        fresh = names.fresh(expr.var)
        body = substitute(expr.body, expr.var, ast.Var(fresh))
        return ast.Let(fresh, rename_bound(expr.defn, names), rename_bound(body, names))
    if isinstance(expr, ast.For):
        fresh = names.fresh(expr.var)
        body = substitute(expr.body, expr.var, ast.Var(fresh))
        return ast.For(fresh, rename_bound(expr.source, names), rename_bound(body, names))
    children = tuple(rename_bound(child, names) for child in expr.children())
    if children == expr.children():
        return expr
    return expr.rebuild(children)


def count_occurrences(expr: ast.NnrcNode, var: str) -> int:
    """Number of *free* occurrences of ``var`` in ``expr``."""
    if isinstance(expr, ast.Var):
        return 1 if expr.name == var else 0
    if isinstance(expr, (ast.Let, ast.For)):
        source_or_defn = expr.children()[0]
        inner = 0 if expr.var == var else count_occurrences(expr.children()[1], var)
        return count_occurrences(source_or_defn, var) + inner
    return sum(count_occurrences(child, var) for child in expr.children())


def all_names(expr: ast.NnrcNode) -> FrozenSet[str]:
    """Every variable name appearing anywhere (free or bound)."""
    return free_vars(expr) | bound_vars(expr)
