"""S-expression interchange for plans and patterns (paper §8).

"JRules and SQL support rely on existing Java parsers for those
languages, which pass an AST to the compiler encoded as an
S-expression."  This module provides that interchange format for the
Python compiler: every NRAe plan, NNRC expression, and CAMP pattern can
be serialised to a textual S-expression and read back losslessly, so
external frontends (or humans) can hand the compiler ready-made ASTs,
and optimized plans can be saved and reloaded.

Grammar::

    sexp  ::= atom | ( sexp* )
    atom  ::= symbol | integer | float | "string"

Values are encoded with tagged forms: ``(bag e*)``, ``(rec (name e)*)``,
``(date "YYYY-MM-DD")``, ``null``, ``true``/``false``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple, Union

from repro.camp import ast as camp
from repro.data import operators as ops
from repro.data.foreign import DateValue
from repro.data.model import Bag, Record
from repro.nnrc import ast as nnrc
from repro.nraenv import ast as nra

Sexp = Union[str, int, float, List["Sexp"]]


class SexpError(ValueError):
    """Malformed S-expression input."""


# ---------------------------------------------------------------------------
# Reader / writer for the textual form
# ---------------------------------------------------------------------------


def parse_sexp(text: str) -> Sexp:
    """Parse one S-expression from text."""
    tokens = _tokenize(text)
    expr, index = _read(tokens, 0)
    if index != len(tokens):
        raise SexpError("trailing input after S-expression")
    return expr


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in "()":
            tokens.append(ch)
            i += 1
        elif ch == ";":
            while i < len(text) and text[i] != "\n":
                i += 1
        elif ch == '"':
            j = i + 1
            parts = []
            while j < len(text) and text[j] != '"':
                if text[j] == "\\" and j + 1 < len(text):
                    parts.append(text[j + 1])
                    j += 2
                else:
                    parts.append(text[j])
                    j += 1
            if j >= len(text):
                raise SexpError("unterminated string")
            tokens.append('"' + "".join(parts))
            i = j + 1
        else:
            j = i
            while j < len(text) and not text[j].isspace() and text[j] not in '();"':
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def _read(tokens: List[str], index: int) -> Tuple[Sexp, int]:
    if index >= len(tokens):
        raise SexpError("unexpected end of input")
    token = tokens[index]
    if token == "(":
        items: List[Sexp] = []
        index += 1
        while index < len(tokens) and tokens[index] != ")":
            item, index = _read(tokens, index)
            items.append(item)
        if index >= len(tokens):
            raise SexpError("missing )")
        return items, index + 1
    if token == ")":
        raise SexpError("unexpected )")
    if token.startswith('"'):
        return token[1:], index + 1
    try:
        return int(token), index + 1
    except ValueError:
        pass
    try:
        return float(token), index + 1
    except ValueError:
        pass
    return token, index + 1


def print_sexp(expr: Sexp) -> str:
    """Render an S-expression to text."""
    if isinstance(expr, list):
        return "(%s)" % " ".join(print_sexp(item) for item in expr)
    if isinstance(expr, str) and _is_symbol(expr):
        return expr
    if isinstance(expr, str):
        escaped = expr.replace("\\", "\\\\").replace('"', '\\"')
        return '"%s"' % escaped
    return repr(expr)


def _is_symbol(text: str) -> bool:
    return bool(text) and all(
        ch.isalnum() or ch in "_-+*/<>=.!?$%" for ch in text
    ) and not text[0].isdigit() and not _looks_numeric(text)


def _looks_numeric(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


def value_to_sexp(value: Any) -> Sexp:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, DateValue):
        return ["date", value.isoformat()]
    if isinstance(value, Bag):
        return ["bag"] + [value_to_sexp(v) for v in value]
    if isinstance(value, Record):
        return ["rec"] + [[name, value_to_sexp(v)] for name, v in value.fields]
    raise SexpError("cannot encode value %r" % (value,))


def sexp_to_value(expr: Sexp) -> Any:
    if expr == "null":
        return None
    if expr == "true":
        return True
    if expr == "false":
        return False
    if isinstance(expr, (int, float)):
        return expr
    if isinstance(expr, str):
        return expr
    if isinstance(expr, list) and expr:
        head = expr[0]
        if head == "date":
            return DateValue.parse(expr[1])
        if head == "bag":
            return Bag(sexp_to_value(item) for item in expr[1:])
        if head == "rec":
            return Record({item[0]: sexp_to_value(item[1]) for item in expr[1:]})
    raise SexpError("cannot decode value %r" % (expr,))


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------

_PARAM_UNOPS = {
    "rec": (ops.OpRec, lambda op: [op.field], lambda a: ops.OpRec(a[0])),
    "dot": (ops.OpDot, lambda op: [op.field], lambda a: ops.OpDot(a[0])),
    "remove": (ops.OpRemove, lambda op: [op.field], lambda a: ops.OpRemove(a[0])),
    "project": (
        ops.OpProject,
        lambda op: [list(op.fields)],
        lambda a: ops.OpProject(a[0]),
    ),
    "sort_by": (
        ops.OpSortBy,
        lambda op: [[[f, "desc" if d else "asc"] for f, d in op.keys]],
        lambda a: ops.OpSortBy([(k[0], k[1] == "desc") for k in a[0]]),
    ),
    "like": (ops.OpLike, lambda op: [op.pattern], lambda a: ops.OpLike(a[0])),
    "substring": (
        ops.OpSubstring,
        lambda op: [op.start, "null" if op.length is None else op.length],
        lambda a: ops.OpSubstring(a[0], None if a[1] == "null" else a[1]),
    ),
    "limit": (ops.OpLimit, lambda op: [op.n], lambda a: ops.OpLimit(a[0])),
}

_SIMPLE_UNOPS = {
    cls().name: cls
    for cls in ops.UNARY_OPS
    if cls not in {entry[0] for entry in _PARAM_UNOPS.values()}
}

_BINOPS = {cls().name: cls for cls in ops.BINARY_OPS}


def _unop_to_sexp(op: ops.UnaryOp) -> Sexp:
    for name, (cls, encode, _) in _PARAM_UNOPS.items():
        if isinstance(op, cls):
            return [name] + encode(op)
    return op.name


def _sexp_to_unop(expr: Sexp) -> ops.UnaryOp:
    if isinstance(expr, list):
        name = expr[0]
        if name in _PARAM_UNOPS:
            return _PARAM_UNOPS[name][2](expr[1:])
        raise SexpError("unknown unary op %r" % (expr,))
    if expr in _PARAM_UNOPS:
        raise SexpError("unary op %r requires parameters" % expr)
    if expr in _SIMPLE_UNOPS:
        return _SIMPLE_UNOPS[expr]()
    raise SexpError("unknown unary op %r" % (expr,))


def _sexp_to_binop(expr: Sexp) -> ops.BinaryOp:
    if isinstance(expr, str) and expr in _BINOPS:
        return _BINOPS[expr]()
    raise SexpError("unknown binary op %r" % (expr,))


# ---------------------------------------------------------------------------
# NRAe plans
# ---------------------------------------------------------------------------


def nraenv_to_sexp(plan: nra.NraeNode) -> Sexp:
    """Encode an NRAe (or NRA) plan."""
    if isinstance(plan, nra.Const):
        return ["const", value_to_sexp(plan.value)]
    if isinstance(plan, nra.ID):
        return "in"
    if isinstance(plan, nra.Env):
        return "env"
    if isinstance(plan, nra.GetConstant):
        return ["table", plan.cname]
    if isinstance(plan, nra.App):
        return ["comp", nraenv_to_sexp(plan.after), nraenv_to_sexp(plan.before)]
    if isinstance(plan, nra.AppEnv):
        return ["comp-env", nraenv_to_sexp(plan.after), nraenv_to_sexp(plan.before)]
    if isinstance(plan, nra.Unop):
        return ["unop", _unop_to_sexp(plan.op), nraenv_to_sexp(plan.arg)]
    if isinstance(plan, nra.Binop):
        return [
            "binop",
            plan.op.name,
            nraenv_to_sexp(plan.left),
            nraenv_to_sexp(plan.right),
        ]
    if isinstance(plan, nra.Map):
        return ["map", nraenv_to_sexp(plan.body), nraenv_to_sexp(plan.input)]
    if isinstance(plan, nra.MapEnv):
        return ["map-env", nraenv_to_sexp(plan.body)]
    if isinstance(plan, nra.Select):
        return ["select", nraenv_to_sexp(plan.pred), nraenv_to_sexp(plan.input)]
    if isinstance(plan, nra.Product):
        return ["product", nraenv_to_sexp(plan.left), nraenv_to_sexp(plan.right)]
    if isinstance(plan, nra.DepJoin):
        return ["dep-join", nraenv_to_sexp(plan.body), nraenv_to_sexp(plan.input)]
    if isinstance(plan, nra.Default):
        return ["default", nraenv_to_sexp(plan.left), nraenv_to_sexp(plan.right)]
    raise SexpError("cannot encode plan node %r" % (plan,))


def sexp_to_nraenv(expr: Sexp) -> nra.NraeNode:
    """Decode an NRAe plan."""
    if expr == "in":
        return nra.ID()
    if expr == "env":
        return nra.Env()
    if not isinstance(expr, list) or not expr:
        raise SexpError("cannot decode plan %r" % (expr,))
    head = expr[0]
    if head == "const":
        return nra.Const(sexp_to_value(expr[1]))
    if head == "table":
        return nra.GetConstant(expr[1])
    if head == "comp":
        return nra.App(sexp_to_nraenv(expr[1]), sexp_to_nraenv(expr[2]))
    if head == "comp-env":
        return nra.AppEnv(sexp_to_nraenv(expr[1]), sexp_to_nraenv(expr[2]))
    if head == "unop":
        return nra.Unop(_sexp_to_unop(expr[1]), sexp_to_nraenv(expr[2]))
    if head == "binop":
        return nra.Binop(
            _sexp_to_binop(expr[1]), sexp_to_nraenv(expr[2]), sexp_to_nraenv(expr[3])
        )
    if head == "map":
        return nra.Map(sexp_to_nraenv(expr[1]), sexp_to_nraenv(expr[2]))
    if head == "map-env":
        return nra.MapEnv(sexp_to_nraenv(expr[1]))
    if head == "select":
        return nra.Select(sexp_to_nraenv(expr[1]), sexp_to_nraenv(expr[2]))
    if head == "product":
        return nra.Product(sexp_to_nraenv(expr[1]), sexp_to_nraenv(expr[2]))
    if head == "dep-join":
        return nra.DepJoin(sexp_to_nraenv(expr[1]), sexp_to_nraenv(expr[2]))
    if head == "default":
        return nra.Default(sexp_to_nraenv(expr[1]), sexp_to_nraenv(expr[2]))
    raise SexpError("cannot decode plan %r" % (expr,))


# ---------------------------------------------------------------------------
# CAMP patterns (the interchange the paper's JRules frontend uses)
# ---------------------------------------------------------------------------


def camp_to_sexp(pattern: camp.CampNode) -> Sexp:
    if isinstance(pattern, camp.PConst):
        return ["const", value_to_sexp(pattern.value)]
    if isinstance(pattern, camp.PIt):
        return "it"
    if isinstance(pattern, camp.PEnv):
        return "env"
    if isinstance(pattern, camp.PGetConstant):
        return ["table", pattern.cname]
    if isinstance(pattern, camp.PUnop):
        return ["unop", _unop_to_sexp(pattern.op), camp_to_sexp(pattern.arg)]
    if isinstance(pattern, camp.PBinop):
        return [
            "binop",
            pattern.op.name,
            camp_to_sexp(pattern.left),
            camp_to_sexp(pattern.right),
        ]
    if isinstance(pattern, camp.PLetIt):
        return ["let-it", camp_to_sexp(pattern.defn), camp_to_sexp(pattern.body)]
    if isinstance(pattern, camp.PLetEnv):
        return ["let-env", camp_to_sexp(pattern.defn), camp_to_sexp(pattern.body)]
    if isinstance(pattern, camp.PMap):
        return ["pmap", camp_to_sexp(pattern.body)]
    if isinstance(pattern, camp.PAssert):
        return ["assert", camp_to_sexp(pattern.body)]
    if isinstance(pattern, camp.POrElse):
        return ["or-else", camp_to_sexp(pattern.left), camp_to_sexp(pattern.right)]
    raise SexpError("cannot encode pattern %r" % (pattern,))


def sexp_to_camp(expr: Sexp) -> camp.CampNode:
    if expr == "it":
        return camp.PIt()
    if expr == "env":
        return camp.PEnv()
    if not isinstance(expr, list) or not expr:
        raise SexpError("cannot decode pattern %r" % (expr,))
    head = expr[0]
    if head == "const":
        return camp.PConst(sexp_to_value(expr[1]))
    if head == "table":
        return camp.PGetConstant(expr[1])
    if head == "unop":
        return camp.PUnop(_sexp_to_unop(expr[1]), sexp_to_camp(expr[2]))
    if head == "binop":
        return camp.PBinop(
            _sexp_to_binop(expr[1]), sexp_to_camp(expr[2]), sexp_to_camp(expr[3])
        )
    if head == "let-it":
        return camp.PLetIt(sexp_to_camp(expr[1]), sexp_to_camp(expr[2]))
    if head == "let-env":
        return camp.PLetEnv(sexp_to_camp(expr[1]), sexp_to_camp(expr[2]))
    if head == "pmap":
        return camp.PMap(sexp_to_camp(expr[1]))
    if head == "assert":
        return camp.PAssert(sexp_to_camp(expr[1]))
    if head == "or-else":
        return camp.POrElse(sexp_to_camp(expr[1]), sexp_to_camp(expr[2]))
    raise SexpError("cannot decode pattern %r" % (expr,))


# -- convenience: textual round trips ---------------------------------------


def dumps_plan(plan: nra.NraeNode) -> str:
    return print_sexp(nraenv_to_sexp(plan))


def loads_plan(text: str) -> nra.NraeNode:
    return sexp_to_nraenv(parse_sexp(text))


def dumps_camp(pattern: camp.CampNode) -> str:
    return print_sexp(camp_to_sexp(pattern))


def loads_camp(text: str) -> camp.CampNode:
    return sexp_to_camp(parse_sexp(text))
