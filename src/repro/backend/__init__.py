"""Code generation backends and their runtime library (paper §8)."""

from repro.backend.js_gen import generate_javascript
from repro.backend.mapreduce import (
    MapReduceChain,
    NotDistributable,
    distribute,
    is_distributable,
    run_chain,
)
from repro.backend.python_gen import compile_nnrc_to_callable, generate_python

__all__ = [
    "MapReduceChain",
    "NotDistributable",
    "compile_nnrc_to_callable",
    "distribute",
    "generate_javascript",
    "generate_python",
    "is_distributable",
    "run_chain",
]
