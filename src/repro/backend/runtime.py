"""Runtime library for generated code (paper §8).

"The emitted code has to be linked with a small runtime library which
implements core operations over the data model (e.g., record
construction/access, collection operations such as flatten, distinct,
etc.)" — this is that library for the Python backend.  Generated code
calls these functions by name; they delegate to the single source of
operator semantics in :mod:`repro.data.operators`.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence, Tuple

from repro.data import operators as ops
from repro.data.model import Bag, DataError, Record


#: Default value for the generated functions' environment parameter.
EMPTY_RECORD = Record({})


def brec(field: str, value: Any) -> Record:
    """``[field: value]``."""
    return Record({field: value})


def dot(value: Any, field: str) -> Any:
    return ops.OpDot(field).apply(value)


def remove(value: Any, field: str) -> Any:
    return ops.OpRemove(field).apply(value)


def project(value: Any, fields: Sequence[str]) -> Any:
    return ops.OpProject(fields).apply(value)


def coll(value: Any) -> Bag:
    return Bag([value])


def flatten(value: Any) -> Bag:
    return ops.OpFlatten().apply(value)


def distinct(value: Any) -> Bag:
    return ops.OpDistinct().apply(value)


def neg(value: Any) -> bool:
    return ops.OpNeg().apply(value)


def count(value: Any) -> int:
    return ops.OpCount().apply(value)


def agg_sum(value: Any) -> Any:
    return ops.OpSum().apply(value)


def agg_avg(value: Any) -> Any:
    return ops.OpAvg().apply(value)


def agg_min(value: Any) -> Any:
    return ops.OpMin().apply(value)


def agg_max(value: Any) -> Any:
    return ops.OpMax().apply(value)


def singleton(value: Any) -> Any:
    return ops.OpSingleton().apply(value)


def tostring(value: Any) -> str:
    return ops.OpToString().apply(value)


def numneg(value: Any) -> Any:
    return ops.OpNumNeg().apply(value)


def sort_by(value: Any, keys: Sequence[Tuple[str, bool]]) -> Any:
    return ops.OpSortBy(keys).apply(value)


def like(value: Any, pattern: str) -> bool:
    return ops.OpLike(pattern).apply(value)


def substring(value: Any, start: int, length: Any) -> str:
    return ops.OpSubstring(start, length).apply(value)


def date_year(value: Any) -> int:
    return ops.OpDateYear().apply(value)


def date_month(value: Any) -> int:
    return ops.OpDateMonth().apply(value)


def date_day(value: Any) -> int:
    return ops.OpDateDay().apply(value)


# -- binary -------------------------------------------------------------------


def eq(left: Any, right: Any) -> bool:
    return ops.OpEq().apply(left, right)


def member(left: Any, right: Any) -> bool:
    return ops.OpIn().apply(left, right)


def union(left: Any, right: Any) -> Bag:
    return ops.OpUnion().apply(left, right)


def bag_diff(left: Any, right: Any) -> Bag:
    return ops.OpBagDiff().apply(left, right)


def bag_inter(left: Any, right: Any) -> Bag:
    return ops.OpBagInter().apply(left, right)


def concat(left: Any, right: Any) -> Record:
    return ops.OpConcat().apply(left, right)


def merge_concat(left: Any, right: Any) -> Bag:
    return ops.OpMergeConcat().apply(left, right)


def lt(left: Any, right: Any) -> bool:
    return ops.OpLt().apply(left, right)


def le(left: Any, right: Any) -> bool:
    return ops.OpLe().apply(left, right)


def gt(left: Any, right: Any) -> bool:
    return ops.OpGt().apply(left, right)


def ge(left: Any, right: Any) -> bool:
    return ops.OpGe().apply(left, right)


def and_(left: Any, right: Any) -> bool:
    return ops.OpAnd().apply(left, right)


def or_(left: Any, right: Any) -> bool:
    return ops.OpOr().apply(left, right)


def add(left: Any, right: Any) -> Any:
    return ops.OpAdd().apply(left, right)


def sub(left: Any, right: Any) -> Any:
    return ops.OpSub().apply(left, right)


def mult(left: Any, right: Any) -> Any:
    return ops.OpMult().apply(left, right)


def div(left: Any, right: Any) -> Any:
    return ops.OpDiv().apply(left, right)


def str_concat(left: Any, right: Any) -> str:
    return ops.OpStrConcat().apply(left, right)


def date_plus_days(left: Any, right: Any) -> Any:
    return ops.OpDatePlusDays().apply(left, right)


def date_minus_days(left: Any, right: Any) -> Any:
    return ops.OpDateMinusDays().apply(left, right)


def date_plus_months(left: Any, right: Any) -> Any:
    return ops.OpDatePlusMonths().apply(left, right)


def date_minus_months(left: Any, right: Any) -> Any:
    return ops.OpDateMinusMonths().apply(left, right)


def date_plus_years(left: Any, right: Any) -> Any:
    return ops.OpDatePlusYears().apply(left, right)


def date_minus_years(left: Any, right: Any) -> Any:
    return ops.OpDateMinusYears().apply(left, right)


def limit(value: Any, n: int) -> Any:
    return ops.OpLimit(n).apply(value)


# -- control helpers used by generated code ----------------------------------


def bag_items(value: Any) -> Tuple[Any, ...]:
    """Iteration source for comprehensions; enforces bagness."""
    if not isinstance(value, Bag):
        raise DataError("comprehension source must be a bag, got %r" % (value,))
    return value.items


def mk_bag(items: Iterable[Any]) -> Bag:
    return Bag(items)


def bool_(value: Any) -> bool:
    if not isinstance(value, bool):
        raise DataError("condition must be a boolean, got %r" % (value,))
    return value


def get_constant(constants: Any, name: str) -> Any:
    try:
        return constants[name]
    except KeyError:
        raise DataError("unknown database constant %r" % (name,))


# -- observability (see repro.obs) --------------------------------------------
#
# Generated code resolves these functions through the module object
# (``_rt.dot(...)``) at call time, so observation is implemented by
# *swapping the module globals* for counting wrappers while an observer
# is installed: the default path runs the original functions with zero
# added work.

#: name → original function, non-empty only while an observer is installed.
_WRAPPED = {}


def install_observer(metrics) -> None:
    """Wrap every runtime operation to count applications into ``metrics``.

    Counters are named ``runtime.calls.<fn>``; :func:`bag_items`
    additionally feeds the ``runtime.bag_size`` histogram with the size
    of every comprehension source the generated code iterates.
    """
    if _WRAPPED:
        uninstall_observer()
    module_globals = globals()
    bag_hist = metrics.histogram("runtime.bag_size")
    for name, fn in sorted(module_globals.items()):
        if name.startswith("_") or not callable(fn):
            continue
        if getattr(fn, "__module__", None) != __name__:
            continue
        if name in ("install_observer", "uninstall_observer"):
            continue
        counter = metrics.counter("runtime.calls." + name)
        if name == "bag_items":

            def wrapped(value, _fn=fn, _counter=counter, _hist=bag_hist):
                _counter.inc()
                items = _fn(value)
                _hist.record(len(items))
                return items

        else:

            def wrapped(*args, _fn=fn, _counter=counter, **kwargs):
                _counter.inc()
                return _fn(*args, **kwargs)

        _WRAPPED[name] = fn
        module_globals[name] = wrapped


def uninstall_observer() -> None:
    """Restore the bare runtime functions."""
    module_globals = globals()
    for name, fn in _WRAPPED.items():
        module_globals[name] = fn
    _WRAPPED.clear()
