"""Runtime library for generated code (paper §8).

"The emitted code has to be linked with a small runtime library which
implements core operations over the data model (e.g., record
construction/access, collection operations such as flatten, distinct,
etc.)" — this is that library for the Python backend.  Generated code
calls these functions by name; multiset operations go straight to the
keyed kernel (:mod:`repro.data.kernel`) — the same one every evaluator
runs on — and everything else delegates to pre-instantiated operators
from :mod:`repro.data.operators`, so generated code allocates no
operator objects per call.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence, Tuple

from repro.data import kernel
from repro.data import operators as ops
from repro.data.model import Bag, DataError, Record


def _bag_arg(value: Any, op: str) -> Bag:
    if not isinstance(value, Bag):
        raise DataError("%s expects a bag, got %r" % (op, value))
    return value


def _record_arg(value: Any, op: str) -> Record:
    if not isinstance(value, Record):
        raise DataError("%s expects a record, got %r" % (op, value))
    return value


# Parameterless operators are singletons here: generated code calls these
# functions millions of times, so no per-call operator allocation.
_FLATTEN = ops.OpFlatten()
_NEG = ops.OpNeg()
_COUNT = ops.OpCount()
_SUM = ops.OpSum()
_AVG = ops.OpAvg()
_MIN = ops.OpMin()
_MAX = ops.OpMax()
_SINGLETON = ops.OpSingleton()
_TOSTRING = ops.OpToString()
_NUMNEG = ops.OpNumNeg()
_DATE_YEAR = ops.OpDateYear()
_DATE_MONTH = ops.OpDateMonth()
_DATE_DAY = ops.OpDateDay()
_EQ = ops.OpEq()
_CONCAT = ops.OpConcat()
_LT = ops.OpLt()
_LE = ops.OpLe()
_GT = ops.OpGt()
_GE = ops.OpGe()
_AND = ops.OpAnd()
_OR = ops.OpOr()
_ADD = ops.OpAdd()
_SUB = ops.OpSub()
_MULT = ops.OpMult()
_DIV = ops.OpDiv()
_STR_CONCAT = ops.OpStrConcat()
_DATE_PLUS_DAYS = ops.OpDatePlusDays()
_DATE_MINUS_DAYS = ops.OpDateMinusDays()
_DATE_PLUS_MONTHS = ops.OpDatePlusMonths()
_DATE_MINUS_MONTHS = ops.OpDateMinusMonths()
_DATE_PLUS_YEARS = ops.OpDatePlusYears()
_DATE_MINUS_YEARS = ops.OpDateMinusYears()


#: Default value for the generated functions' environment parameter.
EMPTY_RECORD = Record({})


def brec(field: str, value: Any) -> Record:
    """``[field: value]``."""
    return Record({field: value})


def dot(value: Any, field: str) -> Any:
    return ops.OpDot(field).apply(value)


def remove(value: Any, field: str) -> Any:
    return ops.OpRemove(field).apply(value)


def project(value: Any, fields: Sequence[str]) -> Any:
    return ops.OpProject(fields).apply(value)


def coll(value: Any) -> Bag:
    return Bag([value])


def flatten(value: Any) -> Bag:
    return _FLATTEN.apply(value)


def distinct(value: Any) -> Bag:
    return kernel.distinct(_bag_arg(value, "distinct"))


def neg(value: Any) -> bool:
    return _NEG.apply(value)


def count(value: Any) -> int:
    return _COUNT.apply(value)


def agg_sum(value: Any) -> Any:
    return _SUM.apply(value)


def agg_avg(value: Any) -> Any:
    return _AVG.apply(value)


def agg_min(value: Any) -> Any:
    return _MIN.apply(value)


def agg_max(value: Any) -> Any:
    return _MAX.apply(value)


def singleton(value: Any) -> Any:
    return _SINGLETON.apply(value)


def tostring(value: Any) -> str:
    return _TOSTRING.apply(value)


def numneg(value: Any) -> Any:
    return _NUMNEG.apply(value)


def sort_by(value: Any, keys: Sequence[Tuple[str, bool]]) -> Any:
    return ops.OpSortBy(keys).apply(value)


def like(value: Any, pattern: str) -> bool:
    return ops.OpLike(pattern).apply(value)


def substring(value: Any, start: int, length: Any) -> str:
    return ops.OpSubstring(start, length).apply(value)


def date_year(value: Any) -> int:
    return _DATE_YEAR.apply(value)


def date_month(value: Any) -> int:
    return _DATE_MONTH.apply(value)


def date_day(value: Any) -> int:
    return _DATE_DAY.apply(value)


# -- binary -------------------------------------------------------------------


def eq(left: Any, right: Any) -> bool:
    return _EQ.apply(left, right)


def member(left: Any, right: Any) -> bool:
    return kernel.contains(_bag_arg(right, "member"), left)


def union(left: Any, right: Any) -> Bag:
    return kernel.union(_bag_arg(left, "union"), _bag_arg(right, "union"))


def bag_diff(left: Any, right: Any) -> Bag:
    return kernel.minus(_bag_arg(left, "bag_diff"), _bag_arg(right, "bag_diff"))


def bag_inter(left: Any, right: Any) -> Bag:
    return kernel.intersection(_bag_arg(left, "bag_inter"), _bag_arg(right, "bag_inter"))


def concat(left: Any, right: Any) -> Record:
    return _CONCAT.apply(left, right)


def merge_concat(left: Any, right: Any) -> Bag:
    return kernel.merge_concat(
        _record_arg(left, "merge_concat"), _record_arg(right, "merge_concat")
    )


def lt(left: Any, right: Any) -> bool:
    return _LT.apply(left, right)


def le(left: Any, right: Any) -> bool:
    return _LE.apply(left, right)


def gt(left: Any, right: Any) -> bool:
    return _GT.apply(left, right)


def ge(left: Any, right: Any) -> bool:
    return _GE.apply(left, right)


def and_(left: Any, right: Any) -> bool:
    return _AND.apply(left, right)


def or_(left: Any, right: Any) -> bool:
    return _OR.apply(left, right)


def add(left: Any, right: Any) -> Any:
    return _ADD.apply(left, right)


def sub(left: Any, right: Any) -> Any:
    return _SUB.apply(left, right)


def mult(left: Any, right: Any) -> Any:
    return _MULT.apply(left, right)


def div(left: Any, right: Any) -> Any:
    return _DIV.apply(left, right)


def str_concat(left: Any, right: Any) -> str:
    return _STR_CONCAT.apply(left, right)


def date_plus_days(left: Any, right: Any) -> Any:
    return _DATE_PLUS_DAYS.apply(left, right)


def date_minus_days(left: Any, right: Any) -> Any:
    return _DATE_MINUS_DAYS.apply(left, right)


def date_plus_months(left: Any, right: Any) -> Any:
    return _DATE_PLUS_MONTHS.apply(left, right)


def date_minus_months(left: Any, right: Any) -> Any:
    return _DATE_MINUS_MONTHS.apply(left, right)


def date_plus_years(left: Any, right: Any) -> Any:
    return _DATE_PLUS_YEARS.apply(left, right)


def date_minus_years(left: Any, right: Any) -> Any:
    return _DATE_MINUS_YEARS.apply(left, right)


def limit(value: Any, n: int) -> Any:
    return ops.OpLimit(n).apply(value)


# -- control helpers used by generated code ----------------------------------


def bag_items(value: Any) -> Tuple[Any, ...]:
    """Iteration source for comprehensions; enforces bagness."""
    if not isinstance(value, Bag):
        raise DataError("comprehension source must be a bag, got %r" % (value,))
    return value.items


def mk_bag(items: Iterable[Any]) -> Bag:
    return Bag(items)


def bool_(value: Any) -> bool:
    if not isinstance(value, bool):
        raise DataError("condition must be a boolean, got %r" % (value,))
    return value


def get_constant(constants: Any, name: str) -> Any:
    try:
        return constants[name]
    except KeyError:
        raise DataError("unknown database constant %r" % (name,))


# -- observability (see repro.obs) --------------------------------------------
#
# Generated code resolves these functions through the module object
# (``_rt.dot(...)``) at call time, so observation is implemented by
# *swapping the module globals* for counting wrappers while an observer
# is installed: the default path runs the original functions with zero
# added work.

#: name → original function, non-empty only while an observer is installed.
_WRAPPED = {}


def install_observer(metrics) -> None:
    """Wrap every runtime operation to count applications into ``metrics``.

    Counters are named ``runtime.calls.<fn>``; :func:`bag_items`
    additionally feeds the ``runtime.bag_size`` histogram with the size
    of every comprehension source the generated code iterates.
    """
    if _WRAPPED:
        uninstall_observer()
    module_globals = globals()
    bag_hist = metrics.histogram("runtime.bag_size")
    for name, fn in sorted(module_globals.items()):
        if name.startswith("_") or not callable(fn):
            continue
        if getattr(fn, "__module__", None) != __name__:
            continue
        if name in ("install_observer", "uninstall_observer"):
            continue
        counter = metrics.counter("runtime.calls." + name)
        if name == "bag_items":

            def wrapped(value, _fn=fn, _counter=counter, _hist=bag_hist):
                _counter.inc()
                items = _fn(value)
                _hist.record(len(items))
                return items

        else:

            def wrapped(*args, _fn=fn, _counter=counter, **kwargs):
                _counter.inc()
                return _fn(*args, **kwargs)

        _WRAPPED[name] = fn
        module_globals[name] = wrapped


def uninstall_observer() -> None:
    """Restore the bare runtime functions."""
    module_globals = globals()
    for name, fn in _WRAPPED.items():
        module_globals[name] = fn
    _WRAPPED.clear()
