"""NNRC → Python source code generation (paper §8's JS backend, in Python).

Generates a self-contained Python function from an (optimized) NNRC
expression.  The generated code is plain, readable Python: ``let``
becomes an assignment, comprehensions become accumulation loops, and
every data operation is a call into :mod:`repro.backend.runtime`.
Non-trivial constant values (bags, records, dates) are carried in a
constant pool so the source stays printable.
"""

from __future__ import annotations

import itertools
import linecache
from typing import Any, Callable, Dict, List, Tuple

from repro.data import operators as ops
from repro.data.model import Bag, Record
from repro.nnrc import ast

_INDENT = "    "


class _Emitter:
    """Accumulates statements and fresh temporaries for one function."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.pool: List[Any] = []
        self._counter = 0

    def fresh(self, hint: str = "t") -> str:
        self._counter += 1
        return "_%s%d" % (hint, self._counter)

    def emit(self, depth: int, line: str) -> None:
        self.lines.append(_INDENT * depth + line)

    def pooled(self, value: Any) -> str:
        self.pool.append(value)
        return "_pool[%d]" % (len(self.pool) - 1)


def _sanitize(name: str) -> str:
    """Make an NNRC variable a valid Python identifier."""
    safe = "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in name)
    if not safe or safe[0].isdigit():
        safe = "v_" + safe
    return "u_" + safe


def _const_expr(value: Any, emitter: _Emitter) -> str:
    if value is None or isinstance(value, (bool, int, float)):
        return repr(value)
    if isinstance(value, str):
        return repr(value)
    if isinstance(value, Bag) and not value.items:
        return "_rt.mk_bag(())"
    if isinstance(value, (Bag, Record)):
        return emitter.pooled(value)
    return emitter.pooled(value)


#: Unary operators rendered as runtime calls with extra literal arguments.
def _unop_call(op: ops.UnaryOp, arg: str, emitter: _Emitter) -> str:
    if isinstance(op, ops.OpIdentity):
        return arg
    if isinstance(op, ops.OpRec):
        return "_rt.brec(%r, %s)" % (op.field, arg)
    if isinstance(op, ops.OpDot):
        return "_rt.dot(%s, %r)" % (arg, op.field)
    if isinstance(op, ops.OpRemove):
        return "_rt.remove(%s, %r)" % (arg, op.field)
    if isinstance(op, ops.OpProject):
        return "_rt.project(%s, %r)" % (arg, op.fields)
    if isinstance(op, ops.OpSortBy):
        return "_rt.sort_by(%s, %r)" % (arg, op.keys)
    if isinstance(op, ops.OpLike):
        return "_rt.like(%s, %r)" % (arg, op.pattern)
    if isinstance(op, ops.OpSubstring):
        return "_rt.substring(%s, %r, %r)" % (arg, op.start, op.length)
    if isinstance(op, ops.OpLimit):
        return "_rt.limit(%s, %r)" % (arg, op.n)
    simple = {
        ops.OpNeg: "neg",
        ops.OpBag: "coll",
        ops.OpFlatten: "flatten",
        ops.OpDistinct: "distinct",
        ops.OpCount: "count",
        ops.OpSum: "agg_sum",
        ops.OpAvg: "agg_avg",
        ops.OpMin: "agg_min",
        ops.OpMax: "agg_max",
        ops.OpSingleton: "singleton",
        ops.OpToString: "tostring",
        ops.OpNumNeg: "numneg",
        ops.OpDateYear: "date_year",
        ops.OpDateMonth: "date_month",
        ops.OpDateDay: "date_day",
    }
    fn = simple.get(type(op))
    if fn is None:
        raise TypeError("no Python codegen for unary op %r" % (op,))
    return "_rt.%s(%s)" % (fn, arg)


_BINOP_FNS = {
    ops.OpEq: "eq",
    ops.OpIn: "member",
    ops.OpUnion: "union",
    ops.OpBagDiff: "bag_diff",
    ops.OpBagInter: "bag_inter",
    ops.OpConcat: "concat",
    ops.OpMergeConcat: "merge_concat",
    ops.OpLt: "lt",
    ops.OpLe: "le",
    ops.OpGt: "gt",
    ops.OpGe: "ge",
    ops.OpAnd: "and_",
    ops.OpOr: "or_",
    ops.OpAdd: "add",
    ops.OpSub: "sub",
    ops.OpMult: "mult",
    ops.OpDiv: "div",
    ops.OpStrConcat: "str_concat",
    ops.OpDatePlusDays: "date_plus_days",
    ops.OpDateMinusDays: "date_minus_days",
    ops.OpDatePlusMonths: "date_plus_months",
    ops.OpDateMinusMonths: "date_minus_months",
    ops.OpDatePlusYears: "date_plus_years",
    ops.OpDateMinusYears: "date_minus_years",
}


def _compile(expr: ast.NnrcNode, emitter: _Emitter, depth: int) -> str:
    """Emit statements for ``expr``; return a Python expression string."""
    if isinstance(expr, ast.Var):
        return _sanitize(expr.name)
    if isinstance(expr, ast.Const):
        return _const_expr(expr.value, emitter)
    if isinstance(expr, ast.GetConstant):
        return "_rt.get_constant(constants, %r)" % expr.cname
    if isinstance(expr, ast.Unop):
        return _unop_call(expr.op, _compile(expr.arg, emitter, depth), emitter)
    if isinstance(expr, ast.Binop):
        fn = _BINOP_FNS.get(type(expr.op))
        if fn is None:
            raise TypeError("no Python codegen for binary op %r" % (expr.op,))
        left = _compile(expr.left, emitter, depth)
        right = _compile(expr.right, emitter, depth)
        return "_rt.%s(%s, %s)" % (fn, left, right)
    if isinstance(expr, ast.Let):
        value = _compile(expr.defn, emitter, depth)
        emitter.emit(depth, "%s = %s" % (_sanitize(expr.var), value))
        return _compile(expr.body, emitter, depth)
    if isinstance(expr, ast.For):
        source = _compile(expr.source, emitter, depth)
        acc = emitter.fresh("acc")
        emitter.emit(depth, "%s = []" % acc)
        emitter.emit(depth, "for %s in _rt.bag_items(%s):" % (_sanitize(expr.var), source))
        body = _compile(expr.body, emitter, depth + 1)
        emitter.emit(depth + 1, "%s.append(%s)" % (acc, body))
        return "_rt.mk_bag(%s)" % acc
    if isinstance(expr, ast.If):
        cond = _compile(expr.cond, emitter, depth)
        out = emitter.fresh("if")
        emitter.emit(depth, "if _rt.bool_(%s):" % cond)
        then_value = _compile(expr.then, emitter, depth + 1)
        emitter.emit(depth + 1, "%s = %s" % (out, then_value))
        emitter.emit(depth, "else:")
        else_value = _compile(expr.otherwise, emitter, depth + 1)
        emitter.emit(depth + 1, "%s = %s" % (out, else_value))
        return out
    raise TypeError("unknown NNRC node %r" % (expr,))


def generate_python(
    expr: ast.NnrcNode,
    name: str = "query",
    input_var: str = "d0",
    env_var: str = "e0",
) -> Tuple[str, List[Any]]:
    """Generate Python source for an NNRC expression.

    Returns ``(source, constant_pool)``.  The generated function has
    signature ``name(constants, d0=None, e0=<empty record>)`` where ``constants``
    maps table names to values.
    """
    # α-rename binders so shadowed NNRC variables cannot collide in the
    # flat Python scope of the generated function.
    from repro.nnrc.freevars import FreshNames, all_names, rename_bound

    names = FreshNames(avoid=all_names(expr) | {input_var, env_var}, prefix="b")
    expr = rename_bound(expr, names)

    emitter = _Emitter()
    header = "def %s(constants, %s=None, %s=_rt.EMPTY_RECORD):" % (
        name,
        _sanitize(input_var),
        _sanitize(env_var),
    )
    emitter.emit(0, header)
    body_start = len(emitter.lines)
    result = _compile(expr, emitter, 1)
    emitter.emit(1, "return %s" % result)
    if len(emitter.lines) == body_start:  # pragma: no cover - always has return
        emitter.emit(1, "pass")
    return "\n".join(emitter.lines) + "\n", emitter.pool


#: Process-wide compilation counter: every loaded callable gets a unique
#: function name and pseudo-filename so that compiling many queries in one
#: process (e.g. the query service) can never collide — not in the exec
#: namespace, not in ``linecache``, not in tracebacks.  ``itertools.count``
#: is atomic under CPython, so concurrent compilations are safe too.
_COMPILE_IDS = itertools.count(1)


def compile_nnrc_to_callable(
    expr: ast.NnrcNode,
    name: str = "query",
    input_var: str = "d0",
    env_var: str = "e0",
) -> Callable[..., Any]:
    """Generate and load the Python function for an NNRC expression.

    The returned callable has signature ``fn(constants, d0=None,
    e0=<empty record>)``; its generated source is attached as
    ``fn.__source__``.  Each call loads the code under a unique function
    name and filename (``<nnrc:name#N>``), registered with ``linecache``
    so runtime tracebacks show the generated source.
    """
    from repro.backend import runtime

    uid = next(_COMPILE_IDS)
    unique_name = "%s__c%d" % (name, uid)
    source, pool = generate_python(expr, unique_name, input_var, env_var)
    filename = "<nnrc:%s#%d>" % (name, uid)
    namespace: Dict[str, Any] = {"_rt": runtime, "_pool": pool}
    exec(compile(source, filename, "exec"), namespace)
    fn = namespace[unique_name]
    fn.__source__ = source
    linecache.cache[filename] = (len(source), None, source.splitlines(True), filename)
    return fn
