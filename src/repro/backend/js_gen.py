"""NNRC → JavaScript source emission (paper §8's primary backend).

The original Q*cert emits JavaScript linked against a small JS runtime.
This emitter produces equivalent JavaScript *text* for documentation and
interoperability; it is not executed in this repository (no JS engine is
assumed), so the executable backend of record is
:mod:`repro.backend.python_gen`.  The structure mirrors the Python
generator one-to-one: lets become ``const``, comprehensions become
accumulation loops, and data operations call ``rt.*`` runtime functions.
"""

from __future__ import annotations

import json
from typing import Any, List

from repro.data import operators as ops
from repro.data.foreign import DateValue
from repro.data.model import Bag, Record
from repro.nnrc import ast

_INDENT = "  "


def _js_value(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return json.dumps(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, DateValue):
        return "rt.date(%s)" % json.dumps(value.isoformat())
    if isinstance(value, Bag):
        return "[%s]" % ", ".join(_js_value(v) for v in value)
    if isinstance(value, Record):
        return "{%s}" % ", ".join(
            "%s: %s" % (json.dumps(k), _js_value(v)) for k, v in value.fields
        )
    raise TypeError("cannot render %r as JavaScript" % (value,))


_SIMPLE_UNOPS = {
    ops.OpNeg: "neg",
    ops.OpBag: "coll",
    ops.OpFlatten: "flatten",
    ops.OpDistinct: "distinct",
    ops.OpCount: "count",
    ops.OpSum: "sum",
    ops.OpAvg: "avg",
    ops.OpMin: "min",
    ops.OpMax: "max",
    ops.OpSingleton: "singleton",
    ops.OpToString: "toString",
    ops.OpNumNeg: "numneg",
    ops.OpDateYear: "dateYear",
    ops.OpDateMonth: "dateMonth",
    ops.OpDateDay: "dateDay",
}

_BINOPS = {
    ops.OpEq: "equal",
    ops.OpIn: "member",
    ops.OpUnion: "union",
    ops.OpBagDiff: "bagDiff",
    ops.OpBagInter: "bagInter",
    ops.OpConcat: "concat",
    ops.OpMergeConcat: "mergeConcat",
    ops.OpLt: "lt",
    ops.OpLe: "le",
    ops.OpGt: "gt",
    ops.OpGe: "ge",
    ops.OpAnd: "and",
    ops.OpOr: "or",
    ops.OpAdd: "add",
    ops.OpSub: "sub",
    ops.OpMult: "mult",
    ops.OpDiv: "div",
    ops.OpStrConcat: "strConcat",
    ops.OpDatePlusDays: "datePlusDays",
    ops.OpDateMinusDays: "dateMinusDays",
    ops.OpDatePlusMonths: "datePlusMonths",
    ops.OpDateMinusMonths: "dateMinusMonths",
    ops.OpDatePlusYears: "datePlusYears",
    ops.OpDateMinusYears: "dateMinusYears",
}


class _JsEmitter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self._counter = 0

    def fresh(self, hint: str) -> str:
        self._counter += 1
        return "_%s%d" % (hint, self._counter)

    def emit(self, depth: int, line: str) -> None:
        self.lines.append(_INDENT * depth + line)


def _sanitize(name: str) -> str:
    safe = "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in name)
    return "v_" + safe


def _compile(expr: ast.NnrcNode, emitter: _JsEmitter, depth: int) -> str:
    if isinstance(expr, ast.Var):
        return _sanitize(expr.name)
    if isinstance(expr, ast.Const):
        return _js_value(expr.value)
    if isinstance(expr, ast.GetConstant):
        return "rt.getConstant(constants, %s)" % json.dumps(expr.cname)
    if isinstance(expr, ast.Unop):
        arg = _compile(expr.arg, emitter, depth)
        op = expr.op
        if isinstance(op, ops.OpIdentity):
            return arg
        if isinstance(op, ops.OpRec):
            return "rt.rec(%s, %s)" % (json.dumps(op.field), arg)
        if isinstance(op, ops.OpDot):
            return "rt.dot(%s, %s)" % (arg, json.dumps(op.field))
        if isinstance(op, ops.OpRemove):
            return "rt.remove(%s, %s)" % (arg, json.dumps(op.field))
        if isinstance(op, ops.OpProject):
            return "rt.project(%s, %s)" % (arg, json.dumps(list(op.fields)))
        if isinstance(op, ops.OpSortBy):
            keys = [[field, desc] for field, desc in op.keys]
            return "rt.sortBy(%s, %s)" % (arg, json.dumps(keys))
        if isinstance(op, ops.OpLike):
            return "rt.like(%s, %s)" % (arg, json.dumps(op.pattern))
        if isinstance(op, ops.OpSubstring):
            return "rt.substring(%s, %d, %s)" % (
                arg,
                op.start,
                json.dumps(op.length),
            )
        if isinstance(op, ops.OpLimit):
            return "rt.limit(%s, %d)" % (arg, op.n)
        fn = _SIMPLE_UNOPS.get(type(op))
        if fn is None:
            raise TypeError("no JS codegen for unary op %r" % (op,))
        return "rt.%s(%s)" % (fn, arg)
    if isinstance(expr, ast.Binop):
        fn = _BINOPS.get(type(expr.op))
        if fn is None:
            raise TypeError("no JS codegen for binary op %r" % (expr.op,))
        return "rt.%s(%s, %s)" % (
            fn,
            _compile(expr.left, emitter, depth),
            _compile(expr.right, emitter, depth),
        )
    if isinstance(expr, ast.Let):
        value = _compile(expr.defn, emitter, depth)
        emitter.emit(depth, "const %s = %s;" % (_sanitize(expr.var), value))
        return _compile(expr.body, emitter, depth)
    if isinstance(expr, ast.For):
        source = _compile(expr.source, emitter, depth)
        acc = emitter.fresh("acc")
        emitter.emit(depth, "const %s = [];" % acc)
        emitter.emit(
            depth, "for (const %s of rt.bagItems(%s)) {" % (_sanitize(expr.var), source)
        )
        body = _compile(expr.body, emitter, depth + 1)
        emitter.emit(depth + 1, "%s.push(%s);" % (acc, body))
        emitter.emit(depth, "}")
        return acc
    if isinstance(expr, ast.If):
        cond = _compile(expr.cond, emitter, depth)
        out = emitter.fresh("ite")
        emitter.emit(depth, "let %s;" % out)
        emitter.emit(depth, "if (rt.asBool(%s)) {" % cond)
        then_value = _compile(expr.then, emitter, depth + 1)
        emitter.emit(depth + 1, "%s = %s;" % (out, then_value))
        emitter.emit(depth, "} else {")
        else_value = _compile(expr.otherwise, emitter, depth + 1)
        emitter.emit(depth + 1, "%s = %s;" % (out, else_value))
        emitter.emit(depth, "}")
        return out
    raise TypeError("unknown NNRC node %r" % (expr,))


def generate_javascript(
    expr: ast.NnrcNode,
    name: str = "query",
    input_var: str = "d0",
    env_var: str = "e0",
) -> str:
    """Generate JavaScript source for an NNRC expression."""
    from repro.nnrc.freevars import FreshNames, all_names, rename_bound

    names = FreshNames(avoid=all_names(expr) | {input_var, env_var}, prefix="b")
    expr = rename_bound(expr, names)

    emitter = _JsEmitter()
    emitter.emit(
        0,
        "function %s(rt, constants, %s, %s) {"
        % (name, _sanitize(input_var), _sanitize(env_var)),
    )
    result = _compile(expr, emitter, 1)
    emitter.emit(1, "return %s;" % result)
    emitter.emit(0, "}")
    return "\n".join(emitter.lines) + "\n"
