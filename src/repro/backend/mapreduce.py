"""NNRCMR-lite: a map/reduce view of NNRC (paper §8, Figure 10).

Q*cert lowers NNRC to NNRCMR — "NNRC with Map/Reduce" — on its way to
Spark and Cloudant.  This module reproduces that architectural element
at laptop scale: a compiler from a (canonical) subset of NNRC into a
chain of map/reduce stages, and a simulated distributed engine that
executes the chain over sharded inputs.

Supported NNRC shapes (exactly the ones the distributed lowering
targets):

- ``GetConstant(T)`` — a distributed collection;
- ``{body | x ∈ q}`` — a map stage;
- ``flatten({body | x ∈ q})`` — a flat-map stage (selections compile to
  this shape);
- ``⊙ q`` for an associative-friendly aggregate (count, sum, min, max,
  avg, distinct) — a reduce stage, which terminates the chain.

Map/flat-map bodies must depend only on their element variable and the
database constants (no driver-side variables): that is the condition
for shipping the body to the workers.  Anything else raises
:class:`NotDistributable`; a real deployment would run the residual
expression on the driver (as Q*cert does), which callers can do with
the plain NNRC evaluator.

The headline property (tested): the chain's result is *independent of
the sharding* and equal to the sequential NNRC semantics.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence

from repro.data import operators as ops
from repro.data.model import Bag, DataError
from repro.nnrc import ast
from repro.nnrc.eval import eval_nnrc
from repro.nnrc.freevars import free_vars
from repro.nraenv.eval import EvalError


class NotDistributable(ValueError):
    """The NNRC expression falls outside the map/reduce subset."""


class MapStage:
    """Apply ``body`` to each element (bound to ``var``); one output each."""

    kind = "map"

    def __init__(self, var: str, body: ast.NnrcNode):
        self.var = var
        self.body = body

    def __repr__(self) -> str:
        return "MapStage(%s: %r)" % (self.var, self.body)


class FlatMapStage:
    """Apply ``body`` (bag-valued) to each element and flatten the results."""

    kind = "flatmap"

    def __init__(self, var: str, body: ast.NnrcNode):
        self.var = var
        self.body = body

    def __repr__(self) -> str:
        return "FlatMapStage(%s: %r)" % (self.var, self.body)


#: Reduce operators with (parallel combiner, final) semantics.
_REDUCERS = {
    "count": ops.OpCount(),
    "sum": ops.OpSum(),
    "min": ops.OpMin(),
    "max": ops.OpMax(),
    "avg": ops.OpAvg(),
    "distinct": ops.OpDistinct(),
    "flatten": ops.OpFlatten(),
}


class ReduceStage:
    """Reduce the collected bag with an aggregate; ends the chain."""

    kind = "reduce"

    def __init__(self, name: str):
        if name not in _REDUCERS:
            raise NotDistributable("unsupported reducer %r" % name)
        self.name = name

    def __repr__(self) -> str:
        return "ReduceStage(%s)" % self.name


class MapReduceChain:
    """A distributed collection (``input_table``) piped through stages."""

    def __init__(self, input_table: str, stages: Sequence[Any]):
        self.input_table = input_table
        self.stages = list(stages)

    @property
    def ends_in_reduce(self) -> bool:
        return bool(self.stages) and isinstance(self.stages[-1], ReduceStage)

    def __repr__(self) -> str:
        return "MapReduceChain(%s | %s)" % (
            self.input_table,
            " → ".join(repr(stage) for stage in self.stages),
        )


_AGG_OPS = {
    ops.OpCount: "count",
    ops.OpSum: "sum",
    ops.OpMin: "min",
    ops.OpMax: "max",
    ops.OpAvg: "avg",
    ops.OpDistinct: "distinct",
}


def nnrc_to_mr(
    expr: ast.NnrcNode, constant_names: Optional[Sequence[str]] = None
) -> MapReduceChain:
    """Compile a canonical NNRC expression into a map/reduce chain.

    ``constant_names`` lists names the stage bodies may reference in
    addition to their element variable (defaults to: any GetConstant is
    fine, free *variables* are not).
    """
    if isinstance(expr, ast.GetConstant):
        return MapReduceChain(expr.cname, [])
    if isinstance(expr, ast.For):
        chain = nnrc_to_mr(expr.source, constant_names)
        _require_shippable(expr.body, expr.var)
        _require_open(chain)
        chain.stages.append(MapStage(expr.var, expr.body))
        return chain
    if isinstance(expr, ast.Unop):
        if isinstance(expr.op, ops.OpFlatten) and isinstance(expr.arg, ast.For):
            inner = expr.arg
            chain = nnrc_to_mr(inner.source, constant_names)
            _require_shippable(inner.body, inner.var)
            _require_open(chain)
            chain.stages.append(FlatMapStage(inner.var, inner.body))
            return chain
        agg = _AGG_OPS.get(type(expr.op))
        if agg is not None:
            chain = nnrc_to_mr(expr.arg, constant_names)
            _require_open(chain)
            chain.stages.append(ReduceStage(agg))
            return chain
    raise NotDistributable("no map/reduce shape for %r" % (expr,))


def _require_open(chain: MapReduceChain) -> None:
    if chain.ends_in_reduce:
        raise NotDistributable("cannot extend a chain past its reduce")


def _require_shippable(body: ast.NnrcNode, var: str) -> None:
    extra = free_vars(body) - {var}
    if extra:
        raise NotDistributable(
            "stage body references driver-side variables %s" % sorted(extra)
        )


def _shard(items: Sequence[Any], shards: int) -> List[List[Any]]:
    """Round-robin sharding (any partition works; tests sweep counts)."""
    buckets: List[List[Any]] = [[] for _ in range(max(1, shards))]
    for index, item in enumerate(items):
        buckets[index % len(buckets)].append(item)
    return buckets


def run_chain(
    chain: MapReduceChain,
    constants: Mapping[str, Any],
    shards: int = 4,
) -> Any:
    """Execute the chain over a simulated cluster with ``shards`` workers.

    Map and flat-map stages run per shard, independently (worker-local);
    the reduce stage gathers all shards and applies the aggregate.
    """
    source = constants.get(chain.input_table)
    if not isinstance(source, Bag):
        raise EvalError("input %r is not a bag" % chain.input_table)
    partitions = _shard(source.items, shards)

    reduce_stage: Optional[ReduceStage] = None
    for stage in chain.stages:
        if isinstance(stage, ReduceStage):
            reduce_stage = stage
            break
        new_partitions: List[List[Any]] = []
        for partition in partitions:  # each iteration = one worker
            out: List[Any] = []
            for item in partition:
                value = eval_nnrc(stage.body, {stage.var: item}, constants)
                if isinstance(stage, FlatMapStage):
                    if not isinstance(value, Bag):
                        raise EvalError("flat-map body must return a bag")
                    out.extend(value.items)
                else:
                    out.append(value)
            new_partitions.append(out)
        partitions = new_partitions

    gathered = Bag([item for partition in partitions for item in partition])
    if reduce_stage is None:
        return gathered
    try:
        return _REDUCERS[reduce_stage.name].apply(gathered)
    except DataError as exc:
        raise EvalError(str(exc)) from exc


def distribute(expr: ast.NnrcNode) -> MapReduceChain:
    """Compile, raising :class:`NotDistributable` outside the subset."""
    return nnrc_to_mr(expr)


def is_distributable(expr: ast.NnrcNode) -> bool:
    try:
        nnrc_to_mr(expr)
    except NotDistributable:
        return False
    return True
