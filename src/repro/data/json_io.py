"""JSON (de)serialisation of data-model values.

Bags become JSON arrays, records become JSON objects, and foreign date
values are tagged as ``{"$date": "YYYY-MM-DD"}`` so round-tripping is
loss-free.  This is the wire format used by the examples, the query
service, and the generated-code runtime when exchanging data with the
outside world.

Records whose field set collides with a tag (a record that literally has
a single ``$date`` or ``$record`` field) are escaped as ``{"$record":
{...}}`` so that *every* data-model value round-trips exactly — found by
the round-trip property test in ``tests/data/test_json_io.py``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.data.foreign import DateValue
from repro.data.model import Bag, DataError, Record


#: Record shapes that would be misread as a tag on the way back in.
_AMBIGUOUS_DOMAINS = (("$date",), ("$record",))


def to_jsonable(value: Any) -> Any:
    """Convert a data-model value to JSON-encodable Python data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, DateValue):
        return {"$date": value.isoformat()}
    if isinstance(value, Bag):
        return [to_jsonable(v) for v in value]
    if isinstance(value, Record):
        fields = {k: to_jsonable(v) for k, v in value.fields}
        if value.domain() in _AMBIGUOUS_DOMAINS:
            return {"$record": fields}
        return fields
    raise DataError("cannot serialise %r" % (value,))


def from_jsonable(value: Any) -> Any:
    """Convert JSON-decoded Python data into a data-model value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return Bag(from_jsonable(v) for v in value)
    if isinstance(value, dict):
        if set(value) == {"$date"}:
            tagged = value["$date"]
            if not isinstance(tagged, str):
                raise DataError("$date payload must be a string, got %r" % (tagged,))
            return DateValue.parse(tagged)
        if set(value) == {"$record"}:
            escaped = value["$record"]
            if not isinstance(escaped, dict):
                raise DataError("$record payload must be an object, got %r" % (escaped,))
            return Record({k: from_jsonable(v) for k, v in escaped.items()})
        return Record({k: from_jsonable(v) for k, v in value.items()})
    raise DataError("cannot deserialise %r" % (value,))


def dumps(value: Any, indent: Any = None) -> str:
    """Serialise a data-model value to a JSON string."""
    return json.dumps(to_jsonable(value), indent=indent, sort_keys=True)


def loads(text: str) -> Any:
    """Deserialise a JSON string into a data-model value."""
    return from_jsonable(json.loads(text))
