"""The keyed multiset kernel: one executable definition of bag semantics.

Every language in this compiler — the NRAe/NRA/NNRC/CAMP/OQL/NRAλ
evaluators, the hash-join engine, and the generated-code runtime —
bottoms out in the same §3.1 bag semantics.  This module is the single
place where those multiset operations are implemented; everything else
(including the :class:`~repro.data.model.Bag` and
:class:`~repro.data.model.Record` methods) delegates here.

The kernel is *keyed*: every operation works on the
:func:`~repro.data.model.canonical_key` of a value rather than on the
value itself, and the keys are cached on the immutable wrappers:

- ``Bag`` lazily caches the per-element key tuple (:func:`elem_keys`),
  a ``Counter`` index keyed by canonical key (:func:`key_index`), its
  own canonical key, and its hash;
- ``Record`` lazily caches its canonical key (which embeds the keys of
  every field value) and its hash.

Because the wrappers are immutable, the caches never need invalidation:
a key, once computed, is valid for the lifetime of the value.  With the
index in hand, ``minus`` / ``intersection`` / ``contains`` /
``distinct`` / multiset equality are expected O(n + m) dict operations
instead of the O(n·m) / O(n²) nested ``values_equal`` loops a naive
implementation needs.  See DESIGN.md §8 for the complexity table.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, List, Sequence, Tuple

from repro.data.model import (
    Bag,
    DataError,
    Record,
    canonical_key,
    elem_keys,
)

__all__ = [
    "elem_keys",
    "key_index",
    "union",
    "minus",
    "intersection",
    "contains",
    "distinct",
    "multiset_equal",
    "sort",
    "product",
    "compatible",
    "merge_concat",
    "field_key",
    "path_key",
]


def key_index(bag: Bag) -> Counter:
    """The bag's cached ``canonical_key → multiplicity`` index."""
    index = bag._index
    if index is None:
        index = Counter(elem_keys(bag))
        bag._index = index
    return index


def _with_keys(items: List[Any], keys: List[tuple]) -> Bag:
    """A bag whose per-element key cache is pre-seeded."""
    out = Bag(items)
    out._elem_keys = tuple(keys)
    return out


# ---------------------------------------------------------------------------
# Multiset operations (paper §3.1: ∪, \, ∩, ∈, distinct, multiset equality)
# ---------------------------------------------------------------------------


def union(left: Bag, right: Bag) -> Bag:
    """Additive union ``left ∪ right``; propagates both operands' caches."""
    out = Bag(left._items + right._items)
    if left._elem_keys is not None and right._elem_keys is not None:
        out._elem_keys = left._elem_keys + right._elem_keys
        if left._index is not None and right._index is not None:
            out._index = left._index + right._index
    return out


def minus(left: Bag, right: Bag) -> Bag:
    """Multiset difference: removes one occurrence per match in ``right``."""
    if not right._items or not left._items:
        return left
    budget = dict(key_index(right))
    kept: List[Any] = []
    kept_keys: List[tuple] = []
    for item, key in zip(left._items, elem_keys(left)):
        count = budget.get(key, 0)
        if count:
            budget[key] = count - 1
        else:
            kept.append(item)
            kept_keys.append(key)
    return _with_keys(kept, kept_keys)


def intersection(left: Bag, right: Bag) -> Bag:
    """Multiset intersection: minimum of multiplicities, items from ``left``."""
    if not right._items or not left._items:
        return Bag([])
    budget = dict(key_index(right))
    kept: List[Any] = []
    kept_keys: List[tuple] = []
    for item, key in zip(left._items, elem_keys(left)):
        count = budget.get(key, 0)
        if count:
            budget[key] = count - 1
            kept.append(item)
            kept_keys.append(key)
    return _with_keys(kept, kept_keys)


def contains(bag: Bag, value: Any) -> bool:
    """``value ∈ bag`` via the key index (expected O(1) after indexing)."""
    return canonical_key(value) in key_index(bag)


def distinct(bag: Bag) -> Bag:
    """Duplicate elimination; keeps the first occurrence of each value."""
    seen = set()
    kept: List[Any] = []
    kept_keys: List[tuple] = []
    for item, key in zip(bag._items, elem_keys(bag)):
        if key not in seen:
            seen.add(key)
            kept.append(item)
            kept_keys.append(key)
    if len(kept) == len(bag._items):
        return bag
    return _with_keys(kept, kept_keys)


def multiset_equal(left: Bag, right: Bag) -> bool:
    """Order-insensitive bag equality, via cached keys or indexes."""
    if left is right:
        return True
    if len(left._items) != len(right._items):
        return False
    if left._key is not None and right._key is not None:
        return left._key == right._key
    return key_index(left) == key_index(right)


def sort(bag: Bag) -> Bag:
    """The same contents in canonical-key order (a stable sort)."""
    keys = elem_keys(bag)
    order = sorted(range(len(keys)), key=keys.__getitem__)
    return _with_keys(
        [bag._items[i] for i in order], [keys[i] for i in order]
    )


# ---------------------------------------------------------------------------
# Record operations shared by the evaluators (×, ⊗ and the join engine)
# ---------------------------------------------------------------------------


def product(left: Bag, right: Bag) -> Bag:
    """``left × right``: pairwise ⊕ over two bags of records.

    The one cartesian-product loop shared by every evaluator; raises
    :class:`DataError` when an element is not a record (the evaluators
    re-raise it as their own error type).
    """
    out: List[Any] = []
    for a in left._items:
        if not isinstance(a, Record):
            raise DataError("× expects bags of records, got %r" % (a,))
        for b in right._items:
            if not isinstance(b, Record):
                raise DataError("× expects bags of records, got %r" % (b,))
            out.append(a.concat(b))
    return Bag(out)


def compatible(left: Record, right: Record) -> bool:
    """True iff common attributes agree (by canonical key)."""
    mine = dict(left._fields)
    for name, value in right._fields:
        if name in mine and canonical_key(mine[name]) != canonical_key(value):
            return False
    return True


def merge_concat(left: Record, right: Record) -> Bag:
    """``left ⊗ right``: ``{left ⊕ right}`` if compatible, else ∅."""
    if compatible(left, right):
        return Bag([left.concat(right)])
    return Bag([])


# ---------------------------------------------------------------------------
# Key access for engines (hash joins reuse cached keys)
# ---------------------------------------------------------------------------


def field_key(record: Record, field: str) -> tuple:
    """The canonical key of ``record[field]``.

    When the record's own key is already cached the field key is read
    out of it (the record key embeds every field's key); otherwise only
    the accessed value is keyed, without forcing the whole record.
    """
    cached = record._key
    if cached is not None:
        for name, value_key in cached[1]:
            if name == field:
                return value_key
        raise DataError(
            "record has no attribute %r (has %r)" % (field, record.domain())
        )
    return canonical_key(record[field])


def path_key(record: Record, path: Sequence[str]) -> tuple:
    """The canonical key of the value at a field path (``r.a`` or ``r.a.b``)."""
    value: Any = record
    for step in path[:-1]:
        if not isinstance(value, Record):
            raise DataError("path %r is not a record chain" % (tuple(path),))
        value = value[step]
    if not isinstance(value, Record):
        raise DataError("path %r is not a record chain" % (tuple(path),))
    return field_key(value, path[-1])
