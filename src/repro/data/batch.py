"""Batch (column-at-a-time) operators over bags of records.

The evaluators in this compiler are row-at-a-time: every operator
dispatches through the AST once per element.  For the handful of shapes
the execution engine recognises — hash joins, the derived group-by of
paper §3.2, equality/membership filters against constants, and pure
field projections — the per-row work is the *same* key computation
repeated, which the keyed kernel (:mod:`repro.data.kernel`) has usually
already cached on the immutable values.  This module is the batch
layer the engine calls instead: each function makes one pass over a
row sequence, reads canonical keys through the kernel cache, and does
the rest as plain list/dict work with no AST dispatch inside the loop.

Everything here is *semantics-free*: the functions compute exactly what
the corresponding per-row evaluation would (same values, same
:class:`~repro.data.model.DataError` on ill-shaped rows), so the engine
can use them wherever its shape analysis says the pattern applies and
fall back to the reference semantics everywhere else.  See DESIGN.md
§10 for the contract.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.data import kernel
from repro.data.model import Bag, DataError, Record

__all__ = [
    "path_keys",
    "group_rows",
    "filter_member",
    "filter_equal",
    "project_records",
]


def path_keys(rows: Sequence[Record], path: Sequence[str]) -> List[tuple]:
    """The canonical-key column for ``row.path`` across ``rows``.

    One pass of :func:`repro.data.kernel.path_key`; raises
    :class:`DataError` exactly where per-row evaluation of the ``.``
    chain would (missing field, non-record step).
    """
    if len(path) == 1:
        field = path[0]
        return [kernel.field_key(row, field) for row in rows]
    return [kernel.path_key(row, path) for row in rows]


def group_rows(
    rows: Iterable[Record], fields: Sequence[str]
) -> "Dict[Tuple[tuple, ...], List[Record]]":
    """One-pass hash bucketing of ``rows`` by canonical field keys.

    Returns an insertion-ordered dict mapping the key tuple (one
    canonical key per field, in ``fields`` order) to the rows carrying
    it, in input order.  Because bucketing uses canonical keys, rows
    whose key values are data-model equal (``1`` and ``1.0``, records
    up to field order) share a bucket — exactly the equality the
    derived group-by's ``σ⟨key(In) = Env.__key⟩`` applies.  Buckets
    appear in first-occurrence order, matching ``♯distinct``.

    Raises :class:`DataError` if a row is not a record or misses one of
    the key fields (the shapes on which the reference encoding errors).
    """
    buckets: Dict[Tuple[tuple, ...], List[Record]] = {}
    for row in rows:
        if not isinstance(row, Record):
            raise DataError("group-by expects a bag of records, got %r" % (row,))
        key = tuple(kernel.field_key(row, field) for field in fields)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [row]
        else:
            bucket.append(row)
    return buckets


def filter_member(
    rows: Sequence[Any], keys: Sequence[tuple], members: "Dict[tuple, Any]"
) -> List[Any]:
    """Batch semi-join select: rows whose aligned key is in ``members``.

    ``keys`` is a key column aligned with ``rows`` (:func:`path_keys`
    over the probe path); ``members`` is a key index of the IN-list bag
    (:func:`repro.data.kernel.key_index`).  Equivalent to evaluating
    ``row.path ∈ bag`` per row, at one dict probe per row.
    """
    return [row for row, key in zip(rows, keys) if key in members]


def filter_equal(
    rows: Sequence[Any], keys: Sequence[tuple], key: tuple
) -> List[Any]:
    """Batch equality select: rows whose aligned key equals ``key``.

    Equivalent to ``row.path = constant`` per row (data-model equality
    is canonical-key equality), with the constant keyed once.
    """
    return [row for row, k in zip(rows, keys) if k == key]


def project_records(
    rows: Iterable[Any], fields: Sequence[Tuple[str, str]]
) -> List[Record]:
    """Columnar projection: ``[n1: row.f1, ..., nk: row.fk]`` per row.

    ``fields`` are ``(output name, source field)`` pairs in record-
    construction order; a repeated output name keeps the last pair
    (⊕'s right bias).  Raises :class:`DataError` on non-record rows or
    missing source fields, like the per-row ``OpDot`` chain.
    """
    out: List[Record] = []
    for row in rows:
        if not isinstance(row, Record):
            raise DataError("project expects records, got %r" % (row,))
        out.append(Record({name: row[field] for name, field in fields}))
    return out


def partition_bag(rows: Sequence[Record]) -> Bag:
    """A bag over already-bucketed rows (partition view, no copy)."""
    return Bag(rows)
