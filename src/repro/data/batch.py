"""Batch (column-at-a-time) operators over bags of records.

The evaluators in this compiler are row-at-a-time: every operator
dispatches through the AST once per element.  For the handful of shapes
the execution engine recognises — hash joins, the derived group-by of
paper §3.2, equality/membership filters against constants, and pure
field projections — the per-row work is the *same* key computation
repeated, which the keyed kernel (:mod:`repro.data.kernel`) has usually
already cached on the immutable values.  This module is the batch
layer the engine calls instead: each function makes one pass over a
row sequence, reads canonical keys through the kernel cache, and does
the rest as plain list/dict work with no AST dispatch inside the loop.

Since the columnar representation landed (:mod:`repro.data.columnar`),
the entry points that scan rows also accept a :class:`ColumnarBag`
directly: keys then come from the bag's cached key columns and
projections from column selection, with no :class:`Record` access at
all.

Everything here is *semantics-free*: the functions compute exactly what
the corresponding per-row evaluation would (same values, same
:class:`~repro.data.model.DataError` on ill-shaped rows — up to the
evaluation-order caveat DESIGN.md §13 spells out for columnar inputs),
so the engine can use them wherever its shape analysis says the pattern
applies and fall back to the reference semantics everywhere else.  See
DESIGN.md §10 for the contract.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple, Union

from repro.data import kernel
from repro.data.columnar import MISSING, ColumnarBag
from repro.data.model import Bag, DataError, Record

__all__ = [
    "path_keys",
    "group_rows",
    "filter_member",
    "filter_equal",
    "project_records",
    "partition_bag",
]

Rows = Union[Sequence[Record], ColumnarBag]


def path_keys(rows: Rows, path: Sequence[str]) -> List[tuple]:
    """The canonical-key column for ``row.path`` across ``rows``.

    One pass of :func:`repro.data.kernel.path_key`; raises
    :class:`DataError` exactly where per-row evaluation of the ``.``
    chain would (missing field, non-record step).  An empty ``path`` is
    a caller bug, not a data shape: it is rejected eagerly.  On a
    :class:`ColumnarBag` the single-field case is the bag's cached key
    column; deeper paths chain through the first field's value column.
    """
    if not path:
        raise DataError("path_keys requires a non-empty field path")
    if isinstance(rows, ColumnarBag):
        if len(path) == 1:
            return list(rows.key_column(path[0]))
        head, rest = path[0], path[1:]
        keys: List[tuple] = []
        for value in rows.column(head):
            if value is MISSING:
                raise DataError("record has no attribute %r (columnar)" % (head,))
            if not isinstance(value, Record):
                raise DataError(
                    "path %r: %r is not a record" % (".".join(path), value)
                )
            keys.append(kernel.path_key(value, rest))
        return keys
    if not rows:
        return []
    if len(path) == 1:
        field = path[0]
        return [kernel.field_key(row, field) for row in rows]
    return [kernel.path_key(row, path) for row in rows]


def group_rows(
    rows: Union[Iterable[Record], ColumnarBag], fields: Sequence[str]
) -> "Dict[Tuple[tuple, ...], List[Record]]":
    """One-pass hash bucketing of ``rows`` by canonical field keys.

    Returns an insertion-ordered dict mapping the key tuple (one
    canonical key per field, in ``fields`` order) to the rows carrying
    it, in input order.  Because bucketing uses canonical keys, rows
    whose key values are data-model equal (``1`` and ``1.0``, records
    up to field order) share a bucket — exactly the equality the
    derived group-by's ``σ⟨key(In) = Env.__key⟩`` applies.  Buckets
    appear in first-occurrence order, matching ``♯distinct``.

    On a :class:`ColumnarBag` the bucket keys are read straight from
    the cached key columns (one zip, no per-row field scans).

    Raises :class:`DataError` if a row is not a record or misses one of
    the key fields (the shapes on which the reference encoding errors).
    """
    buckets: Dict[Tuple[tuple, ...], List[Record]] = {}
    if isinstance(rows, ColumnarBag):
        key_columns = [rows.key_column(field) for field in fields]
        for row, key in zip(rows.rows(), zip(*key_columns)):
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [row]
            else:
                bucket.append(row)
        return buckets
    for row in rows:
        if not isinstance(row, Record):
            raise DataError("group-by expects a bag of records, got %r" % (row,))
        key = tuple(kernel.field_key(row, field) for field in fields)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [row]
        else:
            bucket.append(row)
    return buckets


def filter_member(
    rows: Union[Sequence[Any], ColumnarBag],
    keys: Sequence[tuple],
    members: "Dict[tuple, Any]",
) -> List[Any]:
    """Batch semi-join select: rows whose aligned key is in ``members``.

    ``keys`` is a key column aligned with ``rows`` (:func:`path_keys`
    over the probe path); ``members`` is a key index of the IN-list bag
    (:func:`repro.data.kernel.key_index`).  Equivalent to evaluating
    ``row.path ∈ bag`` per row, at one dict probe per row.
    """
    if isinstance(rows, ColumnarBag):
        rows = rows.rows()
    return [row for row, key in zip(rows, keys) if key in members]


def filter_equal(
    rows: Union[Sequence[Any], ColumnarBag], keys: Sequence[tuple], key: tuple
) -> List[Any]:
    """Batch equality select: rows whose aligned key equals ``key``.

    Equivalent to ``row.path = constant`` per row (data-model equality
    is canonical-key equality), with the constant keyed once.
    """
    if isinstance(rows, ColumnarBag):
        rows = rows.rows()
    return [row for row, k in zip(rows, keys) if k == key]


def project_records(
    rows: Union[Iterable[Any], ColumnarBag], fields: Sequence[Tuple[str, str]]
) -> List[Record]:
    """Columnar projection: ``[n1: row.f1, ..., nk: row.fk]`` per row.

    ``fields`` are ``(output name, source field)`` pairs in record-
    construction order; a repeated output name keeps the last pair
    (⊕'s right bias).  Raises :class:`DataError` on non-record rows or
    missing source fields, like the per-row ``OpDot`` chain.  On a
    :class:`ColumnarBag` this is pure column selection: one zip over
    the source columns, one record build per row.
    """
    out: List[Record] = []
    if isinstance(rows, ColumnarBag):
        columns = []
        for name, field in fields:
            if not rows.has_field(field) or rows.has_missing(field):
                raise DataError(
                    "record has no attribute %r (columnar projection)" % (field,)
                )
            columns.append((name, rows.column(field)))
        for position in range(len(rows)):
            out.append(Record({name: column[position] for name, column in columns}))
        return out
    for row in rows:
        if not isinstance(row, Record):
            raise DataError("project expects records, got %r" % (row,))
        out.append(Record({name: row[field] for name, field in fields}))
    return out


def partition_bag(rows: Sequence[Record]) -> Bag:
    """A bag over already-bucketed rows (partition view, no copy).

    When every row already carries its cached canonical key (the
    kernel computed it while bucketing or joining), the keys are
    propagated into the partition bag's element-key cache so group-by
    aggregates over the partition (distinct, membership, equality)
    don't re-key the same rows.
    """
    out = Bag(rows)
    keys: List[tuple] = []
    for row in rows:
        key = row._key if isinstance(row, Record) else None
        if key is None:
            return out
        keys.append(key)
    out._elem_keys = tuple(keys)
    return out
