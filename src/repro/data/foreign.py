"""Foreign types: values beyond the core data model (paper section 8).

The paper parameterises the mechanisation over "foreign" types and
operators (dates are the canonical example, needed by TPC-H).  Here a
foreign type is any class registered through :func:`register_foreign`,
providing a canonical-order key so that the generic machinery (bag
equality, ``distinct``, sorting) works uniformly.

The one foreign type shipped with the library is :class:`DateValue`,
a calendar date with day-precision arithmetic.
"""

from __future__ import annotations

import datetime
from typing import Any, Callable, Dict, Optional, Tuple, Type


_FOREIGN_KEYS: Dict[type, Callable[[Any], tuple]] = {}


def register_foreign(cls: Type[Any], key_fn: Callable[[Any], tuple]) -> None:
    """Register ``cls`` as a foreign data-model type.

    ``key_fn`` must return a tuple that totally orders instances of the
    class; the class name is prepended automatically so distinct foreign
    types never compare equal.
    """
    _FOREIGN_KEYS[cls] = key_fn


def canonical_key_or_none(value: Any) -> Optional[tuple]:
    """The foreign canonical key for ``value``, or None if not foreign."""
    key_fn = _FOREIGN_KEYS.get(type(value))
    if key_fn is None:
        return None
    return (type(value).__name__,) + key_fn(value)


class DateValue:
    """A calendar date (the TPC-H workload's only foreign type).

    Supports comparison, day-granularity addition/subtraction, and
    year/month/day extraction.
    """

    __slots__ = ("date",)

    def __init__(self, year: int, month: int, day: int):
        self.date = datetime.date(year, month, day)

    @classmethod
    def parse(cls, text: str) -> "DateValue":
        """Parse ``YYYY-MM-DD``."""
        parsed = datetime.date.fromisoformat(text)
        return cls(parsed.year, parsed.month, parsed.day)

    @classmethod
    def from_date(cls, date: datetime.date) -> "DateValue":
        return cls(date.year, date.month, date.day)

    @property
    def year(self) -> int:
        return self.date.year

    @property
    def month(self) -> int:
        return self.date.month

    @property
    def day(self) -> int:
        return self.date.day

    def plus_days(self, days: int) -> "DateValue":
        return DateValue.from_date(self.date + datetime.timedelta(days=days))

    def minus_days(self, days: int) -> "DateValue":
        return self.plus_days(-days)

    def plus_months(self, months: int) -> "DateValue":
        """Calendar month arithmetic; clamps the day to the month's end."""
        total = (self.date.year * 12 + self.date.month - 1) + months
        year, month = divmod(total, 12)
        month += 1
        day = min(self.date.day, _days_in_month(year, month))
        return DateValue(year, month, day)

    def minus_months(self, months: int) -> "DateValue":
        return self.plus_months(-months)

    def plus_years(self, years: int) -> "DateValue":
        return self.plus_months(12 * years)

    def minus_years(self, years: int) -> "DateValue":
        return self.plus_months(-12 * years)

    def days_until(self, other: "DateValue") -> int:
        return (other.date - self.date).days

    def isoformat(self) -> str:
        return self.date.isoformat()

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, DateValue):
            return NotImplemented
        return self.date == other.date

    def __lt__(self, other: "DateValue") -> bool:
        return self.date < other.date

    def __le__(self, other: "DateValue") -> bool:
        return self.date <= other.date

    def __hash__(self) -> int:
        return hash(("DateValue", self.date))

    def __repr__(self) -> str:
        return "DateValue(%r)" % self.date.isoformat()


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        following = datetime.date(year + 1, 1, 1)
    else:
        following = datetime.date(year, month + 1, 1)
    return (following - datetime.date(year, month, 1)).days


def _date_key(value: DateValue) -> Tuple[int, int, int]:
    return (value.date.year, value.date.month, value.date.day)


register_foreign(DateValue, _date_key)
