"""Data model for the NRAe family of languages (paper section 3.1).

Values ``d`` are::

    d ::= c | {} | {d1, ..., dn} | [] | [A1: d1, ..., An: dn]

Constants ``c`` are null, booleans, integers, floats, strings, and
"foreign" values (dates; see :mod:`repro.data.foreign`).  Bags are
multisets of values, records map attribute names to values.

Atoms are represented by the corresponding Python values (``None``,
``bool``, ``int``, ``float``, ``str``); bags and records get dedicated
immutable wrapper classes so that multiset equality and right-favoring
record concatenation have one well-defined meaning across the whole
compiler.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple


class DataError(Exception):
    """Raised when a data-model operation is applied to ill-shaped values.

    The paper's operational semantics (Figure 2) is partial: a judgment
    ``γ ⊢ q @ d ⇓ d'`` may simply not hold (e.g. record access on an
    integer).  In this implementation "the judgment does not hold" is
    modelled by raising :class:`DataError` (or its subclass
    :class:`repro.nraenv.eval.EvalError`).
    """


class Bag:
    """An immutable multiset of values.

    The internal item order is preserved for reproducibility of printing
    and iteration, but equality is *multiset* equality: two bags are
    equal iff they contain the same values with the same multiplicities,
    regardless of order.

    All multiset operations delegate to :mod:`repro.data.kernel`, which
    lazily builds and caches (immutability makes the caches permanent):

    - ``_elem_keys`` — per-element canonical keys, aligned with ``_items``;
    - ``_index`` — a ``Counter`` mapping canonical key → multiplicity;
    - ``_key`` / ``_hash`` — the bag's own canonical key and hash;
    - ``_columnar`` — the bag's column-wise twin, when someone has built
      it (see :mod:`repro.data.columnar`).
    """

    __slots__ = ("_items", "_key", "_hash", "_elem_keys", "_index", "_columnar")

    def __init__(self, items: Iterable[Any] = ()):
        self._items: Tuple[Any, ...] = tuple(items)
        self._key: Optional[tuple] = None
        self._hash: Optional[int] = None
        self._elem_keys: Optional[Tuple[tuple, ...]] = None
        self._index = None  # lazily a collections.Counter (see kernel)
        self._columnar = None  # lazily a columnar.ColumnarBag

    @property
    def items(self) -> Tuple[Any, ...]:
        return self._items

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        return _kernel.multiset_equal(self, other)

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash(canonical_key(self))
            self._hash = value
        return value

    def __repr__(self) -> str:
        return "Bag([%s])" % ", ".join(repr(v) for v in self._items)

    def union(self, other: "Bag") -> "Bag":
        """Multiset (additive) union: ``{1} ∪ {1}`` is ``{1, 1}``."""
        return _kernel.union(self, other)

    def minus(self, other: "Bag") -> "Bag":
        """Multiset difference: removes one occurrence per match."""
        return _kernel.minus(self, other)

    def intersection(self, other: "Bag") -> "Bag":
        """Multiset intersection (minimum of multiplicities)."""
        return _kernel.intersection(self, other)

    def contains(self, value: Any) -> bool:
        return _kernel.contains(self, value)

    def distinct(self) -> "Bag":
        """Duplicate elimination; keeps the first occurrence of each value."""
        return _kernel.distinct(self)

    def sorted(self) -> "Bag":
        """A bag with the same contents in canonical order."""
        return _kernel.sort(self)


class Record:
    """An immutable record: a finite mapping from attribute names to values.

    Attribute order is normalised (sorted by name) so that two records
    with the same field/value pairs are interchangeable everywhere.

    Like :class:`Bag`, a record caches its canonical key (``_key``,
    which embeds every field value's key — the join engine reads field
    keys out of it, see :func:`repro.data.kernel.field_key`) and its
    hash (``_hash``); immutability makes the caches permanent.
    """

    __slots__ = ("_fields", "_key", "_hash")

    def __init__(self, fields: Optional[Mapping[str, Any]] = None, **kwargs: Any):
        merged: Dict[str, Any] = {}
        if fields:
            merged.update(fields)
        merged.update(kwargs)
        self._fields: Tuple[Tuple[str, Any], ...] = tuple(
            sorted(merged.items(), key=lambda kv: kv[0])
        )
        self._key: Optional[tuple] = None
        self._hash: Optional[int] = None

    @property
    def fields(self) -> Tuple[Tuple[str, Any], ...]:
        return self._fields

    def domain(self) -> Tuple[str, ...]:
        """``dom(r)``: the attribute names, sorted."""
        return tuple(name for name, _ in self._fields)

    def __contains__(self, name: str) -> bool:
        return any(field == name for field, _ in self._fields)

    def __getitem__(self, name: str) -> Any:
        for field, value in self._fields:
            if field == name:
                return value
        raise DataError("record has no attribute %r (has %r)" % (name, self.domain()))

    def get(self, name: str, default: Any = None) -> Any:
        for field, value in self._fields:
            if field == name:
                return value
        return default

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[str]:
        return iter(self.domain())

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        if self is other:
            return True
        return canonical_key(self) == canonical_key(other)

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash(canonical_key(self))
            self._hash = value
        return value

    def __repr__(self) -> str:
        body = ", ".join("%s: %r" % (k, v) for k, v in self._fields)
        return "[%s]" % body

    def concat(self, other: "Record") -> "Record":
        """Record concatenation ``⊕``, favoring ``other`` on overlap."""
        merged = dict(self._fields)
        merged.update(dict(other._fields))
        return Record(merged)

    def remove(self, name: str) -> "Record":
        """``d − A``: the record without attribute ``name``.

        Removing an absent attribute is a no-op, matching Q*cert's
        ``rremove``.
        """
        return Record({k: v for k, v in self._fields if k != name})

    def project(self, names: Iterable[str]) -> "Record":
        """``π_{Ai}(d)``: restriction to the given attribute names.

        Projection on absent attributes silently drops them (Q*cert's
        ``rproject`` behaviour over the untyped model).
        """
        wanted = set(names)
        return Record({k: v for k, v in self._fields if k in wanted})

    def compatible_with(self, other: "Record") -> bool:
        """True iff common attributes agree (natural-join compatibility)."""
        return _kernel.compatible(self, other)

    def merge_concat(self, other: "Record") -> Bag:
        """``⊗``: singleton bag of the concatenation if compatible, else ∅."""
        return _kernel.merge_concat(self, other)


# Type ranks used to build a total order across heterogeneous values.
_RANK_NULL = 0
_RANK_BOOL = 1
_RANK_NUMBER = 2
_RANK_STRING = 3
_RANK_FOREIGN = 4
_RANK_BAG = 5
_RANK_RECORD = 6


def canonical_key(value: Any) -> tuple:
    """A total-order key for any data-model value.

    Used to canonicalise bags for multiset equality and for the
    ``distinct``/``sort`` operators.  The key embeds a type rank so that
    values of different kinds never compare equal (in particular
    ``True`` is distinct from ``1``, unlike plain Python equality).
    Ints and floats share a rank, and the number itself is the key —
    Python's cross-type numeric equality, hashing, and ordering are
    exact, so ``1`` and ``1.0`` denote the same number while big
    integers beyond 2**53 are *not* collapsed onto the nearest float.

    Keys of bags and records are cached on the value (see
    :mod:`repro.data.kernel` for the caching contract).
    """
    if value is None:
        return (_RANK_NULL,)
    if isinstance(value, bool):
        return (_RANK_BOOL, value)
    if isinstance(value, (int, float)):
        return (_RANK_NUMBER, value)
    if isinstance(value, str):
        return (_RANK_STRING, value)
    if isinstance(value, Bag):
        key = value._key
        if key is None:
            key = (_RANK_BAG, tuple(sorted(elem_keys(value))))
            value._key = key
        return key
    if isinstance(value, Record):
        key = value._key
        if key is None:
            key = (
                _RANK_RECORD,
                tuple((name, canonical_key(v)) for name, v in value._fields),
            )
            value._key = key
        return key
    foreign_key = _foreign_canonical_key(value)
    if foreign_key is not None:
        return (_RANK_FOREIGN,) + foreign_key
    raise DataError("not a data-model value: %r" % (value,))


def elem_keys(bag: "Bag") -> Tuple[tuple, ...]:
    """The bag's per-element canonical keys, cached and aligned with items."""
    keys = bag._elem_keys
    if keys is None:
        keys = tuple(canonical_key(v) for v in bag._items)
        bag._elem_keys = keys
    return keys


def _foreign_canonical_key(value: Any) -> Optional[tuple]:
    # Imported lazily to avoid a circular import at module load time.
    from repro.data import foreign

    return foreign.canonical_key_or_none(value)


def values_equal(a: Any, b: Any) -> bool:
    """Data-model equality (the ``=`` binary operator)."""
    return canonical_key(a) == canonical_key(b)


def is_value(value: Any) -> bool:
    """True iff ``value`` is a well-formed data-model value."""
    try:
        canonical_key(value)
    except DataError:
        return False
    return True


def bag(*items: Any) -> Bag:
    """Convenience constructor: ``bag(1, 2, 3)``."""
    return Bag(items)


def rec(**fields: Any) -> Record:
    """Convenience constructor: ``rec(name="x", age=3)``."""
    return Record(fields)


def flatten(value: Any) -> Bag:
    """Flatten one level of a bag of bags."""
    if not isinstance(value, Bag):
        raise DataError("flatten expects a bag, got %r" % (value,))
    out: List[Any] = []
    for inner in value:
        if not isinstance(inner, Bag):
            raise DataError("flatten expects a bag of bags, got element %r" % (inner,))
        out.extend(inner.items)
    return Bag(out)


def from_python(value: Any) -> Any:
    """Convert plain Python lists/dicts into data-model values.

    Lists become bags and dicts become records, recursively.  Atoms and
    already-converted values pass through.
    """
    if isinstance(value, (list, tuple)):
        return Bag(from_python(v) for v in value)
    if isinstance(value, dict):
        return Record({k: from_python(v) for k, v in value.items()})
    return value


def to_python(value: Any) -> Any:
    """Convert data-model values back into plain Python lists/dicts."""
    if isinstance(value, Bag):
        return [to_python(v) for v in value]
    if isinstance(value, Record):
        return {k: to_python(v) for k, v in value.fields}
    return value


# The kernel holds every multiset algorithm; the Bag/Record methods above
# delegate to it.  Imported last so the classes it needs already exist
# (kernel imports this module; the cycle is safe in this order).
from repro.data import kernel as _kernel  # noqa: E402
