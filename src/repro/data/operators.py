"""Unary and binary operators over the data model (paper section 3.1).

The paper lists a small core (ident, ¬, ``{d}``, flatten, record
construction/access/removal/projection; =, ∈, ∪, ⊕, ⊗) and notes the
set "can be easily extended (e.g, for arithmetic or aggregation)".
This module implements the core plus the extensions the SQL/OQL/TPC-H
workloads require: arithmetic, comparisons, boolean connectives,
aggregates, bag utilities, string and date operators.

Operators are small immutable objects with an ``apply`` method; they are
shared by every language in the compiler (NRA, NRAe, NNRC, NRAλ, CAMP)
and by the generated-code runtime, so each operator's semantics is
defined in exactly one place.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple

from repro.data import kernel
from repro.data.foreign import DateValue
from repro.data.model import (
    Bag,
    DataError,
    Record,
    canonical_key,
    flatten as flatten_bag,
    values_equal,
)


def _require_bag(value: Any, op: str) -> Bag:
    if not isinstance(value, Bag):
        raise DataError("%s expects a bag, got %r" % (op, value))
    return value


def _require_record(value: Any, op: str) -> Record:
    if not isinstance(value, Record):
        raise DataError("%s expects a record, got %r" % (op, value))
    return value


def _require_bool(value: Any, op: str) -> bool:
    if not isinstance(value, bool):
        raise DataError("%s expects a boolean, got %r" % (op, value))
    return value


def _require_number(value: Any, op: str) -> Any:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise DataError("%s expects a number, got %r" % (op, value))
    return value


class UnaryOp:
    """Base class for unary operators ``⊙ d``."""

    #: short name used in pretty-printing and codegen dispatch
    name: str = "unary"

    def apply(self, value: Any) -> Any:
        raise NotImplementedError

    def _params(self) -> Tuple[Any, ...]:
        return ()

    def __eq__(self, other: Any) -> bool:
        return type(self) is type(other) and self._params() == other._params()

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__,) + self._params())

    def __repr__(self) -> str:
        params = self._params()
        if params:
            return "%s(%s)" % (type(self).__name__, ", ".join(repr(p) for p in params))
        return "%s()" % type(self).__name__


class BinaryOp:
    """Base class for binary operators ``d1 ⊙ d2``."""

    name: str = "binary"

    def apply(self, left: Any, right: Any) -> Any:
        raise NotImplementedError

    def _params(self) -> Tuple[Any, ...]:
        return ()

    def __eq__(self, other: Any) -> bool:
        return type(self) is type(other) and self._params() == other._params()

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__,) + self._params())

    def __repr__(self) -> str:
        params = self._params()
        if params:
            return "%s(%s)" % (type(self).__name__, ", ".join(repr(p) for p in params))
        return "%s()" % type(self).__name__


# ---------------------------------------------------------------------------
# Core unary operators (paper section 3.1)
# ---------------------------------------------------------------------------


class OpIdentity(UnaryOp):
    """``ident d``: returns ``d``."""

    name = "ident"

    def apply(self, value: Any) -> Any:
        return value


class OpNeg(UnaryOp):
    """``¬ d``: boolean negation."""

    name = "neg"

    def apply(self, value: Any) -> Any:
        return not _require_bool(value, "¬")


class OpBag(UnaryOp):
    """``{d}``: the singleton bag containing ``d``."""

    name = "coll"

    def apply(self, value: Any) -> Any:
        return Bag([value])


class OpFlatten(UnaryOp):
    """``flatten d``: flattens one level of a bag of bags."""

    name = "flatten"

    def apply(self, value: Any) -> Any:
        return flatten_bag(value)


class OpRec(UnaryOp):
    """``[A: d]``: the one-field record with attribute ``A`` of value ``d``."""

    name = "rec"

    def __init__(self, field: str):
        self.field = field

    def _params(self) -> Tuple[Any, ...]:
        return (self.field,)

    def apply(self, value: Any) -> Any:
        return Record({self.field: value})


class OpDot(UnaryOp):
    """``d.A``: the value of attribute ``A`` in record ``d``."""

    name = "dot"

    def __init__(self, field: str):
        self.field = field

    def _params(self) -> Tuple[Any, ...]:
        return (self.field,)

    def apply(self, value: Any) -> Any:
        return _require_record(value, ".%s" % self.field)[self.field]


class OpRemove(UnaryOp):
    """``d − A``: record ``d`` without attribute ``A``."""

    name = "remove"

    def __init__(self, field: str):
        self.field = field

    def _params(self) -> Tuple[Any, ...]:
        return (self.field,)

    def apply(self, value: Any) -> Any:
        return _require_record(value, "−%s" % self.field).remove(self.field)


class OpProject(UnaryOp):
    """``π_{A1..An}(d)``: projection of record ``d`` over given attributes."""

    name = "project"

    def __init__(self, fields: Iterable[str]):
        self.fields: Tuple[str, ...] = tuple(sorted(fields))

    def _params(self) -> Tuple[Any, ...]:
        return (self.fields,)

    def apply(self, value: Any) -> Any:
        return _require_record(value, "π").project(self.fields)


# ---------------------------------------------------------------------------
# Extended unary operators (aggregates, bags, strings, numbers, dates)
# ---------------------------------------------------------------------------


class OpDistinct(UnaryOp):
    """``distinct d``: duplicate elimination on a bag."""

    name = "distinct"

    def apply(self, value: Any) -> Any:
        return kernel.distinct(_require_bag(value, "distinct"))


class OpCount(UnaryOp):
    """``count d``: number of elements in a bag."""

    name = "count"

    def apply(self, value: Any) -> Any:
        return len(_require_bag(value, "count"))


class OpSum(UnaryOp):
    """``sum d``: sum of a bag of numbers (0 on the empty bag)."""

    name = "sum"

    def apply(self, value: Any) -> Any:
        items = _require_bag(value, "sum")
        total: Any = 0
        for item in items:
            total = total + _require_number(item, "sum")
        return total


class OpAvg(UnaryOp):
    """``avg d``: arithmetic mean of a non-empty bag of numbers."""

    name = "avg"

    def apply(self, value: Any) -> Any:
        items = _require_bag(value, "avg")
        if not items:
            raise DataError("avg of empty bag")
        total = 0.0
        for item in items:
            total += _require_number(item, "avg")
        return total / len(items)


class OpMin(UnaryOp):
    """``min d``: least element of a non-empty bag (canonical order)."""

    name = "min"

    def apply(self, value: Any) -> Any:
        items = _require_bag(value, "min")
        if not items:
            raise DataError("min of empty bag")
        return min(items, key=canonical_key)


class OpMax(UnaryOp):
    """``max d``: greatest element of a non-empty bag (canonical order)."""

    name = "max"

    def apply(self, value: Any) -> Any:
        items = _require_bag(value, "max")
        if not items:
            raise DataError("max of empty bag")
        return max(items, key=canonical_key)


class OpSingleton(UnaryOp):
    """``elem d``: the sole element of a singleton bag.

    Partial: fails on bags of any other size.  Used to encode SQL scalar
    subqueries and CASE expressions in the algebra (Q*cert's
    ``ASingleton`` plays the same role).
    """

    name = "singleton"

    def apply(self, value: Any) -> Any:
        items = _require_bag(value, "elem")
        if len(items) != 1:
            raise DataError("elem expects a singleton bag, got %d elements" % len(items))
        return items.items[0]


class OpToString(UnaryOp):
    """``tostring d``: canonical string rendering of any value."""

    name = "tostring"

    def apply(self, value: Any) -> Any:
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, DateValue):
            return value.isoformat()
        return repr(value)


class OpNumNeg(UnaryOp):
    """``- d``: arithmetic negation."""

    name = "numneg"

    def apply(self, value: Any) -> Any:
        return -_require_number(value, "negate")


class OpSortBy(UnaryOp):
    """``sort_{A1..An} d``: order a bag of records by the given keys.

    Bags carry an operational item order (they are list-backed), which
    this operator normalises; ``descending`` flags are per-key.  This is
    the foreign "sort" operator the SQL ORDER BY clause compiles to.
    """

    name = "sort_by"

    def __init__(self, keys: Iterable[Tuple[str, bool]]):
        # keys: sequence of (field, descending)
        self.keys: Tuple[Tuple[str, bool], ...] = tuple(
            (field, bool(desc)) for field, desc in keys
        )

    def _params(self) -> Tuple[Any, ...]:
        return (self.keys,)

    def apply(self, value: Any) -> Any:
        items = list(_require_bag(value, "sort_by").items)
        # Stable sort from the last key to the first implements
        # lexicographic multi-key ordering with per-key direction.
        for field, descending in reversed(self.keys):
            items.sort(
                key=lambda r, f=field: canonical_key(_require_record(r, "sort_by")[f]),
                reverse=descending,
            )
        return Bag(items)


class OpLike(UnaryOp):
    """``d like pattern``: SQL LIKE matching with % and _ wildcards."""

    name = "like"

    def __init__(self, pattern: str):
        self.pattern = pattern

    def _params(self) -> Tuple[Any, ...]:
        return (self.pattern,)

    def apply(self, value: Any) -> Any:
        if not isinstance(value, str):
            raise DataError("like expects a string, got %r" % (value,))
        return _like_match(self.pattern, value)


def _like_match(pattern: str, text: str) -> bool:
    """Match a SQL LIKE pattern (``%`` any run, ``_`` any one char)."""
    # Dynamic-programming match, avoiding regex-escaping pitfalls.
    plen, tlen = len(pattern), len(text)
    # reachable[j] == True iff pattern[:i] can match text[:j]
    reachable = [True] + [False] * tlen
    for i in range(1, plen + 1):
        ch = pattern[i - 1]
        if ch == "%":
            new = list(reachable)
            for j in range(1, tlen + 1):
                new[j] = new[j] or new[j - 1]
        else:
            new = [False] * (tlen + 1)
            for j in range(1, tlen + 1):
                if reachable[j - 1] and (ch == "_" or pattern[i - 1] == text[j - 1]):
                    new[j] = True
        reachable = new
    return reachable[tlen]


class OpSubstring(UnaryOp):
    """``substring(d, start, length)`` with 1-based SQL indexing.

    SQL semantics, not Python slicing: the window is the character
    positions ``[start, start + length)`` on the 1-based axis, so a
    non-positive ``start`` shifts the window left off the string rather
    than clamping (``substring('abc' from -1 for 3)`` covers positions
    -1..1 and yields ``'a'``), and a negative ``length`` is an error.
    """

    name = "substring"

    def __init__(self, start: int, length: Any = None):
        self.start = start
        self.length = length

    def _params(self) -> Tuple[Any, ...]:
        return (self.start, self.length)

    def apply(self, value: Any) -> Any:
        if not isinstance(value, str):
            raise DataError("substring expects a string, got %r" % (value,))
        if self.length is None:
            return value[max(self.start - 1, 0):]
        if self.length < 0:
            raise DataError(
                "substring length must be non-negative, got %r" % (self.length,)
            )
        end = self.start + self.length  # one past the window, 1-based
        begin = max(self.start, 1)
        if end <= begin:
            return ""
        return value[begin - 1 : end - 1]


class OpLimit(UnaryOp):
    """``limit n``: the first ``n`` elements of a bag (in item order).

    Meaningful after :class:`OpSortBy`; implements SQL's LIMIT / the
    TPC-H "top N" result convention.  A negative ``n`` yields the empty
    bag (Python's negative slicing would silently drop from the end).
    """

    name = "limit"

    def __init__(self, n: int):
        self.n = n

    def _params(self) -> Tuple[Any, ...]:
        return (self.n,)

    def apply(self, value: Any) -> Any:
        return Bag(_require_bag(value, "limit").items[: max(self.n, 0)])


class OpDateYear(UnaryOp):
    """``extract(year from d)``."""

    name = "date_year"

    def apply(self, value: Any) -> Any:
        if not isinstance(value, DateValue):
            raise DataError("date_year expects a date, got %r" % (value,))
        return value.year


class OpDateMonth(UnaryOp):
    """``extract(month from d)``."""

    name = "date_month"

    def apply(self, value: Any) -> Any:
        if not isinstance(value, DateValue):
            raise DataError("date_month expects a date, got %r" % (value,))
        return value.month


class OpDateDay(UnaryOp):
    """``extract(day from d)``."""

    name = "date_day"

    def apply(self, value: Any) -> Any:
        if not isinstance(value, DateValue):
            raise DataError("date_day expects a date, got %r" % (value,))
        return value.day


# ---------------------------------------------------------------------------
# Core binary operators (paper section 3.1)
# ---------------------------------------------------------------------------


class OpEq(BinaryOp):
    """``d1 = d2``: data-model equality."""

    name = "eq"

    def apply(self, left: Any, right: Any) -> Any:
        return values_equal(left, right)


class OpIn(BinaryOp):
    """``d1 ∈ d2``: bag membership."""

    name = "in"

    def apply(self, left: Any, right: Any) -> Any:
        return kernel.contains(_require_bag(right, "∈"), left)


class OpUnion(BinaryOp):
    """``d1 ∪ d2``: additive bag union."""

    name = "union"

    def apply(self, left: Any, right: Any) -> Any:
        return kernel.union(_require_bag(left, "∪"), _require_bag(right, "∪"))


class OpBagDiff(BinaryOp):
    """``d1 \\ d2``: multiset difference (needed for SQL EXCEPT)."""

    name = "bag_diff"

    def apply(self, left: Any, right: Any) -> Any:
        return kernel.minus(_require_bag(left, "\\"), _require_bag(right, "\\"))


class OpBagInter(BinaryOp):
    """``d1 ∩ d2``: multiset intersection (needed for SQL INTERSECT)."""

    name = "bag_inter"

    def apply(self, left: Any, right: Any) -> Any:
        return kernel.intersection(_require_bag(left, "∩"), _require_bag(right, "∩"))


class OpConcat(BinaryOp):
    """``d1 ⊕ d2``: record concatenation, favoring ``d2`` on overlap."""

    name = "concat"

    def apply(self, left: Any, right: Any) -> Any:
        return _require_record(left, "⊕").concat(_require_record(right, "⊕"))


class OpMergeConcat(BinaryOp):
    """``d1 ⊗ d2``: compatibility-based concatenation.

    A singleton bag with the concatenation when the records agree on
    their common attributes, the empty bag otherwise (paper §3.1).
    """

    name = "merge_concat"

    def apply(self, left: Any, right: Any) -> Any:
        return kernel.merge_concat(_require_record(left, "⊗"), _require_record(right, "⊗"))


# ---------------------------------------------------------------------------
# Extended binary operators (comparisons, boolean, arithmetic, strings, dates)
# ---------------------------------------------------------------------------


def _comparable_pair(left: Any, right: Any, op: str) -> Tuple[Any, Any]:
    if isinstance(left, DateValue) and isinstance(right, DateValue):
        return left, right
    if isinstance(left, str) and isinstance(right, str):
        return left, right
    return _require_number(left, op), _require_number(right, op)


class OpLt(BinaryOp):
    name = "lt"

    def apply(self, left: Any, right: Any) -> Any:
        left, right = _comparable_pair(left, right, "<")
        return left < right


class OpLe(BinaryOp):
    name = "le"

    def apply(self, left: Any, right: Any) -> Any:
        left, right = _comparable_pair(left, right, "<=")
        return left <= right


class OpGt(BinaryOp):
    name = "gt"

    def apply(self, left: Any, right: Any) -> Any:
        left, right = _comparable_pair(left, right, ">")
        return right < left


class OpGe(BinaryOp):
    name = "ge"

    def apply(self, left: Any, right: Any) -> Any:
        left, right = _comparable_pair(left, right, ">=")
        return right <= left


class OpAnd(BinaryOp):
    name = "and"

    def apply(self, left: Any, right: Any) -> Any:
        return _require_bool(left, "and") and _require_bool(right, "and")


class OpOr(BinaryOp):
    name = "or"

    def apply(self, left: Any, right: Any) -> Any:
        return _require_bool(left, "or") or _require_bool(right, "or")


class OpAdd(BinaryOp):
    name = "add"

    def apply(self, left: Any, right: Any) -> Any:
        return _require_number(left, "+") + _require_number(right, "+")


class OpSub(BinaryOp):
    name = "sub"

    def apply(self, left: Any, right: Any) -> Any:
        return _require_number(left, "-") - _require_number(right, "-")


class OpMult(BinaryOp):
    name = "mult"

    def apply(self, left: Any, right: Any) -> Any:
        return _require_number(left, "*") * _require_number(right, "*")


class OpDiv(BinaryOp):
    name = "div"

    def apply(self, left: Any, right: Any) -> Any:
        divisor = _require_number(right, "/")
        if divisor == 0:
            raise DataError("division by zero")
        return _require_number(left, "/") / divisor


class OpStrConcat(BinaryOp):
    name = "str_concat"

    def apply(self, left: Any, right: Any) -> Any:
        if not isinstance(left, str) or not isinstance(right, str):
            raise DataError("|| expects strings, got %r and %r" % (left, right))
        return left + right


def _date_shift_args(left: Any, right: Any, op: str) -> Tuple[DateValue, int]:
    if not isinstance(left, DateValue):
        raise DataError("%s expects a date, got %r" % (op, left))
    if isinstance(right, bool) or not isinstance(right, int):
        raise DataError("%s expects an int amount, got %r" % (op, right))
    return left, right


class OpDatePlusDays(BinaryOp):
    """``d1 + interval 'd2' day``."""

    name = "date_plus_days"

    def apply(self, left: Any, right: Any) -> Any:
        date, amount = _date_shift_args(left, right, "date_plus_days")
        return date.plus_days(amount)


class OpDateMinusDays(BinaryOp):
    """``d1 - interval 'd2' day``."""

    name = "date_minus_days"

    def apply(self, left: Any, right: Any) -> Any:
        date, amount = _date_shift_args(left, right, "date_minus_days")
        return date.minus_days(amount)


class OpDatePlusMonths(BinaryOp):
    """``d1 + interval 'd2' month`` (calendar arithmetic)."""

    name = "date_plus_months"

    def apply(self, left: Any, right: Any) -> Any:
        date, amount = _date_shift_args(left, right, "date_plus_months")
        return date.plus_months(amount)


class OpDateMinusMonths(BinaryOp):
    """``d1 - interval 'd2' month``."""

    name = "date_minus_months"

    def apply(self, left: Any, right: Any) -> Any:
        date, amount = _date_shift_args(left, right, "date_minus_months")
        return date.minus_months(amount)


class OpDatePlusYears(BinaryOp):
    """``d1 + interval 'd2' year``."""

    name = "date_plus_years"

    def apply(self, left: Any, right: Any) -> Any:
        date, amount = _date_shift_args(left, right, "date_plus_years")
        return date.plus_years(amount)


class OpDateMinusYears(BinaryOp):
    """``d1 - interval 'd2' year``."""

    name = "date_minus_years"

    def apply(self, left: Any, right: Any) -> Any:
        date, amount = _date_shift_args(left, right, "date_minus_years")
        return date.minus_years(amount)


#: Every operator class, for registries (codegen dispatch, random plan
#: generation in the property-test harness).
UNARY_OPS = (
    OpIdentity,
    OpNeg,
    OpBag,
    OpFlatten,
    OpRec,
    OpDot,
    OpRemove,
    OpProject,
    OpDistinct,
    OpCount,
    OpSum,
    OpAvg,
    OpMin,
    OpMax,
    OpSingleton,
    OpToString,
    OpNumNeg,
    OpSortBy,
    OpLike,
    OpSubstring,
    OpLimit,
    OpDateYear,
    OpDateMonth,
    OpDateDay,
)

BINARY_OPS = (
    OpEq,
    OpIn,
    OpUnion,
    OpBagDiff,
    OpBagInter,
    OpConcat,
    OpMergeConcat,
    OpLt,
    OpLe,
    OpGt,
    OpGe,
    OpAnd,
    OpOr,
    OpAdd,
    OpSub,
    OpMult,
    OpDiv,
    OpStrConcat,
    OpDatePlusDays,
    OpDateMinusDays,
    OpDatePlusMonths,
    OpDateMinusMonths,
    OpDatePlusYears,
    OpDateMinusYears,
)
