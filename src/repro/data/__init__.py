"""The data model shared by every language in the compiler."""

from repro.data.columnar import ColumnarBag, cached_columnar, ensure_columnar
from repro.data.foreign import DateValue, register_foreign
from repro.data.model import (
    Bag,
    DataError,
    Record,
    bag,
    canonical_key,
    flatten,
    from_python,
    is_value,
    rec,
    to_python,
    values_equal,
)

__all__ = [
    "Bag",
    "ColumnarBag",
    "DataError",
    "DateValue",
    "Record",
    "bag",
    "cached_columnar",
    "canonical_key",
    "ensure_columnar",
    "flatten",
    "from_python",
    "is_value",
    "rec",
    "register_foreign",
    "to_python",
    "values_equal",
]
