"""Columnar bags: per-field value columns behind the row data model.

A :class:`ColumnarBag` stores a bag of records as one Python list per
field, aligned by row position, plus lazily-built *canonical-key
columns* (:func:`repro.data.model.canonical_key` per value — the same
keys the kernel caches on rows, so ``1`` and ``1.0`` share a key and
nested records/bags compare structurally).  It is interconvertible with
the row representation — :meth:`from_bag` / :meth:`to_bag` round-trip
to a multiset-equal bag — and the execution engine
(:mod:`repro.nraenv.exec`) uses it to run recognised σ/χ chains as
fused column passes with no per-row :class:`Record` dispatch.

Heterogeneous bags are representable: a field absent from some rows
holds the :data:`MISSING` sentinel at those positions, and
:meth:`has_missing` is how the engine's shape analysis refuses to
compile predicates over such columns (a per-row ``In.f`` would raise
``DataError`` on exactly the missing rows, so those paths stay on the
reference row path for exactness).

Columns may be *pending*: a derived view (the output of a fused filter)
registers thunks that slice the base bag's columns only when a column
is first read.  Everything here is immutable-by-convention — columns
are never mutated after they are realised, which is what lets the
catalog share them by reference across snapshots and worker processes.

The attachment point is ``Bag._columnar``: :func:`ensure_columnar`
builds (and caches) the columnar form of a bag of records;
:func:`cached_columnar` only reads the cache.  See DESIGN.md §13 for
the layout and the fusion contract built on top of it.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.data.model import Bag, DataError, Record, canonical_key


class _Missing:
    """Sentinel for "this row has no such field" positions in a column."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MISSING"


#: The unique missing-field sentinel.  Never a data-model value, so it
#: can share columns with any real value without ambiguity.
MISSING = _Missing()


class ColumnarBag:
    """A bag of records stored column-wise, aligned by row position.

    Construct via :meth:`from_bag` (decompose an existing bag of
    records), :meth:`from_columns` (adopt prebuilt columns, e.g. from a
    worker snapshot), or :meth:`derived` (a lazily-sliced view of
    another columnar bag — what fused filters produce).
    """

    __slots__ = (
        "_length",
        "_columns",
        "_pending",
        "_missing",
        "_key_columns",
        "_rows",
        "_bag",
    )

    def __init__(
        self,
        length: int,
        columns: Optional[Dict[str, List[Any]]] = None,
        pending: Optional[Dict[str, Callable[[], List[Any]]]] = None,
        rows: Optional[Tuple[Record, ...]] = None,
        bag: Optional[Bag] = None,
    ):
        self._length = length
        self._columns: Dict[str, List[Any]] = columns if columns is not None else {}
        self._pending: Dict[str, Callable[[], List[Any]]] = pending or {}
        self._missing: Dict[str, bool] = {}
        self._key_columns: Dict[str, List[tuple]] = {}
        self._rows = rows
        self._bag = bag

    # -- construction ------------------------------------------------------

    @classmethod
    def from_bag(cls, bag: Bag) -> "ColumnarBag":
        """Decompose a bag of records into columns (two passes).

        Raises :class:`DataError` if any element is not a record — only
        homogeneous bags-of-records have a columnar form.
        """
        rows = bag.items
        names: set = set()
        for row in rows:
            if not isinstance(row, Record):
                raise DataError(
                    "columnar bags hold records, got %r" % (row,)
                )
            names.update(row.domain())
        length = len(rows)
        columns: Dict[str, List[Any]] = {name: [MISSING] * length for name in sorted(names)}
        for position, row in enumerate(rows):
            for name, value in row.fields:
                columns[name][position] = value
        return cls(length, columns=columns, rows=rows, bag=bag)

    @classmethod
    def from_columns(cls, columns: Dict[str, List[Any]], length: int) -> "ColumnarBag":
        """Adopt prebuilt columns (each of ``length``, :data:`MISSING`-padded)."""
        for name, column in columns.items():
            if len(column) != length:
                raise DataError(
                    "column %r has %d values, expected %d"
                    % (name, len(column), length)
                )
        return cls(length, columns=dict(columns))

    @classmethod
    def derived(
        cls,
        base: "ColumnarBag",
        selection: Sequence[int],
        colmap: Dict[str, Any],
        rows: Tuple[Record, ...],
    ) -> "ColumnarBag":
        """A lazy view: ``colmap`` maps visible field → base field (a
        ``str``) or the whole base row (any non-string marker), sliced
        by ``selection``.  ``rows`` are the already-materialised visible
        records (aligned with ``selection``)."""
        pending: Dict[str, Callable[[], List[Any]]] = {}
        base_rows = None
        for name, src in colmap.items():
            if isinstance(src, str):
                pending[name] = _slice_thunk(base, src, selection)
            else:
                if base_rows is None:
                    base_rows = base.rows()
                pending[name] = _row_thunk(base_rows, selection)
        return cls(len(selection), pending=pending, rows=tuple(rows))

    # -- shape -------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def fields(self) -> Tuple[str, ...]:
        """The visible field names, sorted."""
        return tuple(sorted(set(self._columns) | set(self._pending)))

    def has_field(self, name: str) -> bool:
        return name in self._columns or name in self._pending

    def column(self, name: str) -> List[Any]:
        """The value column for ``name`` (realising a pending thunk).

        Positions where the row lacks the field hold :data:`MISSING`.
        Raises :class:`DataError` for an unknown field.
        """
        column = self._columns.get(name)
        if column is not None:
            return column
        thunk = self._pending.pop(name, None)
        if thunk is None:
            raise DataError(
                "columnar bag has no column %r (has %r)" % (name, self.fields())
            )
        column = thunk()
        self._columns[name] = column
        return column

    def has_missing(self, name: str) -> bool:
        """True iff some row lacks ``name`` (its column holds MISSING)."""
        cached = self._missing.get(name)
        if cached is None:
            cached = any(value is MISSING for value in self.column(name))
            self._missing[name] = cached
        return cached

    def key_column(self, name: str) -> List[tuple]:
        """The canonical-key column for ``name``, cached.

        Raises :class:`DataError` if any row lacks the field — exactly
        where per-row ``kernel.field_key`` would.
        """
        keys = self._key_columns.get(name)
        if keys is None:
            keys = []
            for value in self.column(name):
                if value is MISSING:
                    raise DataError(
                        "record has no attribute %r (columnar)" % (name,)
                    )
                keys.append(canonical_key(value))
            self._key_columns[name] = keys
        return keys

    def approx_bytes(self) -> int:
        """Rough resident size of the *realised* columns, in bytes.

        Counts list headers plus a shallow ``sys.getsizeof`` per value
        (sampled: at most 64 values per column, scaled by length), so a
        fleet heartbeat can report cache pressure without walking every
        cell of every table.  Pending (un-realised) columns cost nothing
        and are counted as nothing — this measures what is resident.
        """
        total = 0
        for column in self._columns.values():
            total += sys.getsizeof(column)
            n = len(column)
            if n == 0:
                continue
            sample = column if n <= 64 else column[:: max(1, n // 64)][:64]
            per_value = sum(sys.getsizeof(v) for v in sample) / len(sample)
            total += int(per_value * n)
        for keys in self._key_columns.values():
            total += sys.getsizeof(keys) + 64 * len(keys)
        return total

    # -- row interop -------------------------------------------------------

    def rows(self) -> Tuple[Record, ...]:
        """The rows as records, rebuilt from columns when not retained."""
        rows = self._rows
        if rows is None:
            realised = [(name, self.column(name)) for name in self.fields()]
            built: List[Record] = []
            for position in range(self._length):
                data = {}
                for name, column in realised:
                    value = column[position]
                    if value is not MISSING:
                        data[name] = value
                built.append(Record(data))
            rows = tuple(built)
            self._rows = rows
        return rows

    def to_bag(self) -> Bag:
        """The row-representation bag, cached and cross-linked.

        The returned bag's ``_columnar`` cache points back here, so the
        engine finds the columns again without rebuilding them.
        """
        bag = self._bag
        if bag is None:
            bag = Bag(self.rows())
            self._bag = bag
        if bag._columnar is None:
            bag._columnar = self
        return bag


def _slice_thunk(
    base: ColumnarBag, field: str, selection: Sequence[int]
) -> Callable[[], List[Any]]:
    def realise() -> List[Any]:
        column = base.column(field)
        return [column[index] for index in selection]

    return realise


def _row_thunk(
    base_rows: Tuple[Record, ...], selection: Sequence[int]
) -> Callable[[], List[Any]]:
    def realise() -> List[Any]:
        return [base_rows[index] for index in selection]

    return realise


def ensure_columnar(bag: Bag) -> ColumnarBag:
    """The columnar form of ``bag``, built once and cached on the bag.

    Raises :class:`DataError` if the bag is not a bag of records.
    """
    columnar = bag._columnar
    if columnar is None:
        columnar = ColumnarBag.from_bag(bag)
        bag._columnar = columnar
    return columnar


def cached_columnar(value: Any) -> Optional[ColumnarBag]:
    """The bag's cached columnar form, or None (never builds)."""
    if isinstance(value, Bag):
        return value._columnar
    return None


__all__ = ["MISSING", "ColumnarBag", "ensure_columnar", "cached_columnar"]
