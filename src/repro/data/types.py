"""Types for the data model (paper sections 4.1 and 8).

The paper omits the formal treatment of its type system but uses typing
pervasively: typed rewrites (Definition 4) only promise equivalence on
*well-typed* plans, and several rewrite preconditions are type-based.
This module provides the lattice of types used by the type checkers in
:mod:`repro.typing`:

- atoms: ``TUnit`` (null), ``TBool``, ``TNat`` (ints), ``TFloat``,
  ``TString``, ``TDate`` (foreign);
- ``TBag(element)``;
- ``TRecord(fields)`` with closed-record width+depth subtyping;
- ``TTop`` / ``TBottom`` completing the lattice.

``join``/``meet`` compute least upper / greatest lower bounds, and
``type_of_value`` infers the (most precise) type of a value.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.data.foreign import DateValue
from repro.data.model import Bag, DataError, Record


class QType:
    """Base class for data-model types."""

    def _params(self) -> Tuple[Any, ...]:
        return ()

    def __eq__(self, other: Any) -> bool:
        return type(self) is type(other) and self._params() == other._params()

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__,) + self._params())

    def __repr__(self) -> str:
        return type(self).__name__


class TTop(QType):
    """Supertype of every type."""


class TBottom(QType):
    """Subtype of every type (type of expressions that never produce)."""


class TUnit(QType):
    """The type of ``null``."""


class TBool(QType):
    pass


class TNat(QType):
    """Integers (Q*cert's Nat)."""


class TFloat(QType):
    """Floating-point numbers; TNat is a subtype for convenience."""


class TString(QType):
    pass


class TDate(QType):
    """The foreign date type."""


class TBag(QType):
    """Bags, covariant in the element type."""

    def __init__(self, element: QType):
        self.element = element

    def _params(self) -> Tuple[Any, ...]:
        return (self.element,)

    def __repr__(self) -> str:
        return "TBag(%r)" % (self.element,)


class TRecord(QType):
    """Closed records: width and depth subtyping.

    ``TRecord({"a": TNat()})`` is a supertype of
    ``TRecord({"a": TNat(), "b": TBool()})`` only under *open* records;
    we use closed records (same field set required) plus depth subtyping
    on field types, which is what the rewrites need.
    """

    def __init__(self, fields: Mapping[str, QType]):
        self.fields: Tuple[Tuple[str, QType], ...] = tuple(
            sorted(fields.items(), key=lambda kv: kv[0])
        )

    def _params(self) -> Tuple[Any, ...]:
        return (self.fields,)

    def field_map(self) -> Dict[str, QType]:
        return dict(self.fields)

    def __repr__(self) -> str:
        body = ", ".join("%s: %r" % (k, v) for k, v in self.fields)
        return "TRecord({%s})" % body


def is_subtype(sub: QType, sup: QType) -> bool:
    """Structural subtyping over the lattice."""
    if isinstance(sub, TBottom) or isinstance(sup, TTop):
        return True
    if isinstance(sub, TTop) or isinstance(sup, TBottom):
        return False
    if isinstance(sub, TNat) and isinstance(sup, TFloat):
        return True
    if type(sub) is type(sup) and not sub._params() and not sup._params():
        return True
    if isinstance(sub, TBag) and isinstance(sup, TBag):
        return is_subtype(sub.element, sup.element)
    if isinstance(sub, TRecord) and isinstance(sup, TRecord):
        sub_fields = sub.field_map()
        sup_fields = sup.field_map()
        if set(sub_fields) != set(sup_fields):
            return False
        return all(is_subtype(sub_fields[k], sup_fields[k]) for k in sup_fields)
    return False


def join(a: QType, b: QType) -> QType:
    """Least upper bound of two types."""
    if is_subtype(a, b):
        return b
    if is_subtype(b, a):
        return a
    if isinstance(a, TBag) and isinstance(b, TBag):
        return TBag(join(a.element, b.element))
    if isinstance(a, TRecord) and isinstance(b, TRecord):
        a_fields = a.field_map()
        b_fields = b.field_map()
        if set(a_fields) == set(b_fields):
            return TRecord({k: join(a_fields[k], b_fields[k]) for k in a_fields})
    if {type(a), type(b)} <= {TNat, TFloat}:
        return TFloat()
    return TTop()


def meet(a: QType, b: QType) -> QType:
    """Greatest lower bound of two types."""
    if is_subtype(a, b):
        return a
    if is_subtype(b, a):
        return b
    if isinstance(a, TBag) and isinstance(b, TBag):
        return TBag(meet(a.element, b.element))
    if isinstance(a, TRecord) and isinstance(b, TRecord):
        a_fields = a.field_map()
        b_fields = b.field_map()
        if set(a_fields) == set(b_fields):
            return TRecord({k: meet(a_fields[k], b_fields[k]) for k in a_fields})
    return TBottom()


def type_of_value(value: Any) -> QType:
    """The most precise type of a data-model value."""
    if value is None:
        return TUnit()
    if isinstance(value, bool):
        return TBool()
    if isinstance(value, int):
        return TNat()
    if isinstance(value, float):
        return TFloat()
    if isinstance(value, str):
        return TString()
    if isinstance(value, DateValue):
        return TDate()
    if isinstance(value, Bag):
        element: QType = TBottom()
        for item in value:
            element = join(element, type_of_value(item))
        return TBag(element)
    if isinstance(value, Record):
        return TRecord({k: type_of_value(v) for k, v in value.fields})
    raise DataError("not a data-model value: %r" % (value,))


def value_has_type(value: Any, expected: QType) -> bool:
    """True iff ``value`` inhabits ``expected``."""
    return is_subtype(type_of_value(value), expected)
