"""Type-directed rewriting (paper §8: "type correctness is used
pervasively as a pre-condition for algebraic rewrites").

The untyped engine applies rules whose side conditions are syntactic
(``Ie``/``Ii``, ``nodup``).  Some rewrites need *types*: the flagship
case is resolving a record access through a concatenation,

    (q1 ⊕ q2).a  ⇒  q2.a        when a ∈ dom(type(q2))
    (q1 ⊕ q2).a  ⇒  q1.a        when a ∈ dom(type(q1)) and a ∉ dom(type(q2))

which is exactly what dissolves the SQL translator's row-environment
plumbing: after the ∘e pushdown rules rewrite ``Env.col ∘e (Env ⊕ In)``
to ``(Env ⊕ In).col``, this rule turns it into plain ``In.col``, and the
plan collapses to the classic relational form.

The engine here threads (environment type, input type) contexts through
the AST the same way the type checker does, applies type-conditional
rules at every node, and interleaves with the untyped optimizer until a
fixpoint.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Tuple

from repro.data import operators as ops
from repro.data.types import QType, TBag, TBottom, TRecord
from repro.nraenv import ast
from repro.typing.nraenv_typing import type_nraenv
from repro.typing.op_typing import TypingError

#: A typed rule: (node, env_type, input_type, constants) → replacement.
TypedRule = Callable[
    [ast.NraeNode, QType, QType, Mapping[str, QType]], Optional[ast.NraeNode]
]


def _type_of(
    plan: ast.NraeNode, env_t: QType, in_t: QType, constants: Mapping[str, QType]
) -> Optional[QType]:
    try:
        return type_nraenv(plan, env_t, in_t, constants)
    except TypingError:
        return None


def _record_domain(t: Optional[QType]) -> Optional[Tuple[str, ...]]:
    if isinstance(t, TRecord):
        return tuple(name for name, _ in t.fields)
    return None


def dot_over_concat_typed(
    plan: ast.NraeNode, env_t: QType, in_t: QType, constants: Mapping[str, QType]
) -> Optional[ast.NraeNode]:
    """Resolve ``(q1 ⊕ q2).a`` using the operands' record types."""
    if not (
        isinstance(plan, ast.Unop)
        and isinstance(plan.op, ops.OpDot)
        and isinstance(plan.arg, ast.Binop)
        and isinstance(plan.arg.op, ops.OpConcat)
    ):
        return None
    field = plan.op.field
    right_dom = _record_domain(_type_of(plan.arg.right, env_t, in_t, constants))
    if right_dom is None:
        return None
    if field in right_dom:
        return ast.Unop(plan.op, plan.arg.right)
    left_dom = _record_domain(_type_of(plan.arg.left, env_t, in_t, constants))
    if left_dom is not None and field in left_dom:
        return ast.Unop(plan.op, plan.arg.left)
    return None


def remove_absent_field_typed(
    plan: ast.NraeNode, env_t: QType, in_t: QType, constants: Mapping[str, QType]
) -> Optional[ast.NraeNode]:
    """``q − a ⇒ q`` when the type of ``q`` has no field ``a``."""
    if not (isinstance(plan, ast.Unop) and isinstance(plan.op, ops.OpRemove)):
        return None
    domain = _record_domain(_type_of(plan.arg, env_t, in_t, constants))
    if domain is not None and plan.op.field not in domain:
        return plan.arg
    return None


def concat_dead_left_typed(
    plan: ast.NraeNode, env_t: QType, in_t: QType, constants: Mapping[str, QType]
) -> Optional[ast.NraeNode]:
    """``q1 ⊕ q2 ⇒ q2`` when q2's fields cover q1's entirely.

    Every field of q1 is overwritten by q2 (⊕ favors the right), so q1
    only contributes its evaluation — droppable under Definition 4.
    """
    if not (isinstance(plan, ast.Binop) and isinstance(plan.op, ops.OpConcat)):
        return None
    left_dom = _record_domain(_type_of(plan.left, env_t, in_t, constants))
    right_dom = _record_domain(_type_of(plan.right, env_t, in_t, constants))
    if left_dom is None or right_dom is None:
        return None
    if set(left_dom) <= set(right_dom):
        return plan.right
    return None


def default_typed_rules() -> List[TypedRule]:
    return [dot_over_concat_typed, remove_absent_field_typed, concat_dead_left_typed]


def typed_rewrite_pass(
    plan: ast.NraeNode,
    env_t: QType,
    in_t: QType,
    constants: Mapping[str, QType],
    rules: Optional[List[TypedRule]] = None,
    untyped_rules=None,
) -> ast.NraeNode:
    """One bottom-up pass of type-directed rewriting.

    Children are rebuilt under their own (env, input) typing contexts,
    mirroring the inference rules; nodes whose context cannot be typed
    are left alone (types are a *pre-condition*, never a requirement).
    When ``untyped_rules`` are given they run in the same per-node loop,
    so e.g. the ∘e pushdown's transient duplication is resolved by the
    typed dot rule immediately instead of tripping the cost guard.
    """
    rules = default_typed_rules() if rules is None else rules
    untyped_rules = untyped_rules or []

    def element(t: Optional[QType]) -> Optional[QType]:
        if isinstance(t, TBag):
            return t.element
        if isinstance(t, TBottom):
            return TBottom()
        return None

    def rebuild(node: ast.NraeNode, env_t: QType, in_t: QType) -> ast.NraeNode:
        # -- recurse with the right child contexts -----------------------
        if isinstance(node, ast.App):
            before = rebuild(node.before, env_t, in_t)
            middle = _type_of(before, env_t, in_t, constants)
            after = (
                rebuild(node.after, env_t, middle) if middle is not None else node.after
            )
            node = ast.App(after, before)
        elif isinstance(node, ast.AppEnv):
            before = rebuild(node.before, env_t, in_t)
            new_env = _type_of(before, env_t, in_t, constants)
            after = (
                rebuild(node.after, new_env, in_t) if new_env is not None else node.after
            )
            node = ast.AppEnv(after, before)
        elif isinstance(node, (ast.Map, ast.Select, ast.DepJoin)):
            source = rebuild(node.input, env_t, in_t)
            elem_t = element(_type_of(source, env_t, in_t, constants))
            dependent = node.children()[0]
            if elem_t is not None:
                dependent = rebuild(dependent, env_t, elem_t)
            node = type(node)(dependent, source)
        elif isinstance(node, ast.MapEnv):
            elem_t = element(env_t)
            body = rebuild(node.body, elem_t, in_t) if elem_t is not None else node.body
            node = ast.MapEnv(body)
        else:
            children = tuple(rebuild(child, env_t, in_t) for child in node.children())
            if children != node.children():
                node = node.rebuild(children)
        # -- apply typed + untyped rules at this node ----------------------
        for _ in range(32):
            for rule in rules:
                replacement = rule(node, env_t, in_t, constants)
                if replacement is not None and replacement != node:
                    node = replacement
                    break
            else:
                for untyped in untyped_rules:
                    replacement = untyped.apply(node)
                    if replacement is not None:
                        node = replacement
                        break
                else:
                    break
                continue
        return node

    return rebuild(plan, env_t, in_t)


def optimize_nraenv_typed(
    plan: ast.NraeNode,
    env_t: QType,
    in_t: QType,
    constant_types: Mapping[str, QType],
    max_rounds: int = 4,
):
    """Interleave the untyped optimizer with typed passes to a fixpoint.

    Returns the final :class:`~repro.optim.engine.OptimizeResult` of the
    last untyped round (its plan reflects both kinds of rewriting).
    """
    from repro.optim.cost import size_depth_cost
    from repro.optim.defaults import default_nraenv_rules, optimize_nraenv

    untyped = default_nraenv_rules()
    result = optimize_nraenv(plan)
    best = result
    best_cost = size_depth_cost(result.plan)
    current = result.plan
    for _ in range(max_rounds):
        typed = typed_rewrite_pass(
            current, env_t, in_t, constant_types, untyped_rules=untyped
        )
        if typed == current:
            break
        round_result = optimize_nraenv(typed)
        round_cost = size_depth_cost(round_result.plan)
        if round_cost < best_cost:
            best, best_cost = round_result, round_cost
        current = round_result.plan
    return best
