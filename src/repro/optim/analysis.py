"""Plan analyses used as rewrite preconditions (paper §1, "Code Fragments").

The paper's third challenge is using *code fragments* as rewrite
preconditions; its example is the distinct-elimination law::

    Lemma tdup_elim q : nodupA q -> ♯distinct(q) ⇒ q.

where ``nodupA q`` holds when the plan always returns a
duplicate-free collection.  In Coq the predicate is itself written and
proved in Coq; here it is a Python function with its own soundness
property test (``tests/optim/test_analysis.py``) — same architecture,
different assurance mechanism.

Like ``Ie``/``Ii``, the analysis is a sound syntactic approximation.
"""

from __future__ import annotations

from repro.data import operators as ops
from repro.nraenv import ast


def nodup(plan: ast.NraeNode) -> bool:
    """True when ``plan`` provably returns a bag without duplicates.

    Cases (each sound):

    - ``♯distinct(q)`` — by definition;
    - ``{q}`` — singletons have no duplicates;
    - a constant bag whose value is duplicate-free;
    - ``σ⟨p⟩(q)`` — selection cannot introduce duplicates;
    - ``q1 || q2`` — returns one operand's value unchanged;
    - ``q2 ∘ q1`` / ``q2 ∘e q1`` — the result is ``q2``'s;
    - ``limit``/``sort`` of a duplicate-free bag.
    """
    if isinstance(plan, ast.Unop):
        if isinstance(plan.op, ops.OpDistinct):
            return True
        if isinstance(plan.op, ops.OpBag):
            return True
        if isinstance(plan.op, (ops.OpSortBy, ops.OpLimit)):
            return nodup(plan.arg)
        return False
    if isinstance(plan, ast.Const):
        from repro.data.model import Bag

        value = plan.value
        return isinstance(value, Bag) and len(value.distinct()) == len(value)
    if isinstance(plan, ast.Select):
        return nodup(plan.input)
    if isinstance(plan, ast.Default):
        return nodup(plan.left) and nodup(plan.right)
    if isinstance(plan, (ast.App, ast.AppEnv)):
        return nodup(plan.after)
    return False
