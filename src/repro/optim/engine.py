"""The rewrite engine (paper §8, "Optimizer").

"The optimization infrastructure is parameterized by a list of rewrites
and a cost function.  All possible rewrites are applied through a
depth-first AST traversal and optimization proceeds as long as the cost
is decreasing."

A :class:`Rewrite` is a named pattern-match-based transformation: a
function from plan to plan that returns the input unchanged when it does
not apply (exactly the shape of the Coq ``*_fun`` definitions in the
paper's introduction).  The engine runs passes of depth-first (bottom-up)
application over the whole AST and keeps iterating while the plan's cost
decreases, collecting per-rule fire counts for the experiment analyses.

Observability: when the global tracer (:mod:`repro.obs.trace`) is
enabled — or a :class:`ProvenanceLog` is passed explicitly — the engine
records a **rewrite provenance log**: the ordered firings (rule name,
node size before/after, pass number), the cost trajectory across
passes, per-rule attempt counts and cumulative wall-clock time, and the
reason the run terminated.  ``repro explain`` renders this log.  With
the null tracer the only cost over the bare engine is one ``is None``
check per fire.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Generic, List, Optional, Sequence, Tuple, TypeVar

from repro.obs.trace import get_tracer
from repro.optim.cost import Cost, size_depth_cost

Plan = TypeVar("Plan")


class Rewrite:
    """A single named rewrite rule.

    ``fn`` returns either a new plan (the rewrite fired) or the input
    plan itself / ``None`` (it did not apply).  ``typed`` records
    whether correctness relies on well-typedness (Definition 4) rather
    than holding for all values (Definition 3) — informational, mirrored
    from the Coq lemma statements, and used by the verification harness
    to pick the right checking mode.
    """

    __slots__ = ("name", "fn", "typed", "description")

    def __init__(
        self,
        name: str,
        fn: Callable[[Any], Optional[Any]],
        typed: bool = True,
        description: str = "",
    ):
        self.name = name
        self.fn = fn
        self.typed = typed
        self.description = description

    def apply(self, plan: Any) -> Optional[Any]:
        """The rewritten plan if the rule fires at the root, else None.

        The ``result is plan`` identity check comes first: rules signal
        "did not apply" by returning the input object (or ``None``), so
        the deep structural ``==`` only runs for rules that built a new
        node — and counts as a fire unless that node is structurally
        identical (a rule bug the engine must still tolerate).
        """
        result = self.fn(plan)
        if result is None or result is plan:
            return None
        if result == plan:
            return None
        return result

    def __repr__(self) -> str:
        return "Rewrite(%s)" % self.name


class RewriteEvent:
    """One firing in the provenance log."""

    __slots__ = ("rule", "pass_index", "size_before", "size_after")

    def __init__(self, rule: str, pass_index: int, size_before: int, size_after: int):
        self.rule = rule
        self.pass_index = pass_index
        self.size_before = size_before
        self.size_after = size_after

    def __repr__(self) -> str:
        return "RewriteEvent(%s, pass %d, %d → %d)" % (
            self.rule,
            self.pass_index,
            self.size_before,
            self.size_after,
        )


class ProvenanceLog:
    """Ordered record of what the optimizer did and why it stopped.

    - :attr:`events` — every rule firing, in application order;
    - :attr:`costs` — the cost trajectory: ``costs[0]`` is the initial
      plan cost, ``costs[k]`` the cost after pass ``k``;
    - :attr:`rule_attempts` / :attr:`rule_seconds` — per-rule attempt
      counts and cumulative time in the rule function (only populated
      when ``timing`` is on; timing doubles the engine's bookkeeping
      cost, so it is reserved for traced runs);
    - :attr:`termination` — ``"fixpoint"``, ``"revisit"`` (a previous
      plan state recurred), ``"stall"`` (no best-cost improvement for 8
      consecutive passes), or ``"pass-limit"``.
    """

    __slots__ = ("events", "costs", "rule_attempts", "rule_seconds", "termination", "timing")

    def __init__(self, timing: bool = False):
        self.events: List[RewriteEvent] = []
        self.costs: List[int] = []
        self.rule_attempts: Dict[str, int] = {}
        self.rule_seconds: Dict[str, float] = {}
        self.termination: str = ""
        self.timing = timing

    def rule_counts(self) -> Dict[str, int]:
        """Fires per rule — by construction equal to ``fire_counts``."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.rule] = counts.get(event.rule, 0) + 1
        return counts

    def __repr__(self) -> str:
        return "ProvenanceLog(%d events, %d passes, %s)" % (
            len(self.events),
            max(0, len(self.costs) - 1),
            self.termination or "running",
        )


class OptimizeResult(Generic[Plan]):
    """Outcome of an optimization run: final plan plus statistics."""

    def __init__(
        self,
        plan: Plan,
        initial_cost: int,
        final_cost: int,
        passes: int,
        fire_counts: Dict[str, int],
        provenance: Optional[ProvenanceLog] = None,
    ):
        self.plan = plan
        self.initial_cost = initial_cost
        self.final_cost = final_cost
        self.passes = passes
        self.fire_counts = fire_counts
        self.provenance = provenance

    def fired(self, rule_name: str) -> int:
        return self.fire_counts.get(rule_name, 0)

    def __repr__(self) -> str:
        return "OptimizeResult(cost %d → %d in %d passes)" % (
            self.initial_cost,
            self.final_cost,
            self.passes,
        )


#: Local (per-node) rewrite-loop bound; a safety net against rule sets
#: that cycle at a single node.
_MAX_LOCAL_STEPS = 64
#: Global pass bound; the cost guard normally terminates far earlier.
_MAX_PASSES = 64
#: Passes without a best-cost improvement before giving up.
_MAX_STALLED = 8


def rewrite_once(
    plan: Any,
    rules: Sequence[Rewrite],
    fire_counts: Optional[Dict[str, int]] = None,
    provenance: Optional[ProvenanceLog] = None,
    pass_index: int = 1,
) -> Any:
    """One depth-first pass: at every node, apply rules to fixpoint."""
    counts = fire_counts if fire_counts is not None else {}

    # Two at_node variants so the untraced hot loop carries no
    # bookkeeping at all — provenance timing doubles the per-attempt
    # work, and this loop runs rules × nodes × passes times.
    if provenance is not None and provenance.timing:

        def at_node(node: Any) -> Any:
            for _ in range(_MAX_LOCAL_STEPS):
                for rule in rules:
                    started = time.perf_counter()
                    result = rule.apply(node)
                    provenance.rule_seconds[rule.name] = provenance.rule_seconds.get(
                        rule.name, 0.0
                    ) + (time.perf_counter() - started)
                    provenance.rule_attempts[rule.name] = (
                        provenance.rule_attempts.get(rule.name, 0) + 1
                    )
                    if result is not None:
                        counts[rule.name] = counts.get(rule.name, 0) + 1
                        provenance.events.append(
                            RewriteEvent(rule.name, pass_index, node.size(), result.size())
                        )
                        node = result
                        break
                else:
                    return node
            return node

    else:

        def at_node(node: Any) -> Any:
            for _ in range(_MAX_LOCAL_STEPS):
                for rule in rules:
                    result = rule.apply(node)
                    if result is not None:
                        counts[rule.name] = counts.get(rule.name, 0) + 1
                        if provenance is not None:
                            provenance.events.append(
                                RewriteEvent(rule.name, pass_index, node.size(), result.size())
                            )
                        node = result
                        break
                else:
                    return node
            return node

    return plan.transform_bottom_up(at_node)


def optimize(
    plan: Plan,
    rules: Sequence[Rewrite],
    cost: Cost = size_depth_cost,
    provenance: Optional[ProvenanceLog] = None,
) -> OptimizeResult:
    """Optimize ``plan`` with ``rules``, guided by ``cost``.

    Runs depth-first passes and keeps the best-cost plan seen; a pass may
    temporarily increase the cost (e.g. pushdown rules that duplicate a
    sub-plan to unlock eliminations), so the run only stops once the
    plan reaches a fixpoint, revisits a previous state, or fails to
    improve the best cost for a few consecutive passes — "optimization
    proceeds as long as the cost is decreasing" (paper §8).

    ``provenance``: pass a :class:`ProvenanceLog` to collect the
    derivation explicitly; by default one is collected only when the
    global tracer is enabled (so the untraced path stays free).
    """
    tracer = get_tracer()
    if provenance is None and tracer.enabled:
        provenance = ProvenanceLog(timing=True)
    fire_counts: Dict[str, int] = {}
    initial_cost = cost(plan)
    if provenance is not None:
        provenance.costs.append(initial_cost)
    current = plan
    best, best_cost = plan, initial_cost
    passes = 0
    stalled = 0
    seen = {plan}
    termination = "pass-limit"
    with tracer.span("optimize", category="optim", rules=len(rules), initial_cost=initial_cost):
        for _ in range(_MAX_PASSES):
            with tracer.span("pass %d" % (passes + 1), category="optim") as pass_span:
                candidate = rewrite_once(current, rules, fire_counts, provenance, passes + 1)
            passes += 1
            if candidate is current or candidate == current:
                termination = "fixpoint"
                if provenance is not None:
                    provenance.costs.append(provenance.costs[-1])
                break
            candidate_cost = cost(candidate)
            if provenance is not None:
                provenance.costs.append(candidate_cost)
            pass_span.note(cost=candidate_cost)
            if candidate_cost < best_cost:
                best, best_cost = candidate, candidate_cost
                stalled = 0
            else:
                stalled += 1
                if stalled >= _MAX_STALLED:
                    termination = "stall"
                    break
            if candidate in seen:
                termination = "revisit"
                break
            seen.add(candidate)
            current = candidate
    if provenance is not None:
        provenance.termination = termination
        if tracer.enabled:
            tracer.instant(
                "optimize done",
                category="optim",
                termination=termination,
                passes=passes,
                fires=len(provenance.events),
                final_cost=best_cost,
            )
    return OptimizeResult(best, initial_cost, best_cost, passes, fire_counts, provenance)
