"""The rewrite engine (paper §8, "Optimizer").

"The optimization infrastructure is parameterized by a list of rewrites
and a cost function.  All possible rewrites are applied through a
depth-first AST traversal and optimization proceeds as long as the cost
is decreasing."

A :class:`Rewrite` is a named pattern-match-based transformation: a
function from plan to plan that returns the input unchanged when it does
not apply (exactly the shape of the Coq ``*_fun`` definitions in the
paper's introduction).  The engine runs passes of depth-first (bottom-up)
application over the whole AST and keeps iterating while the plan's cost
decreases, collecting per-rule fire counts for the experiment analyses.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generic, List, Optional, Sequence, Tuple, TypeVar

from repro.optim.cost import Cost, size_depth_cost

Plan = TypeVar("Plan")


class Rewrite:
    """A single named rewrite rule.

    ``fn`` returns either a new plan (the rewrite fired) or the input
    plan itself / ``None`` (it did not apply).  ``typed`` records
    whether correctness relies on well-typedness (Definition 4) rather
    than holding for all values (Definition 3) — informational, mirrored
    from the Coq lemma statements, and used by the verification harness
    to pick the right checking mode.
    """

    __slots__ = ("name", "fn", "typed", "description")

    def __init__(
        self,
        name: str,
        fn: Callable[[Any], Optional[Any]],
        typed: bool = True,
        description: str = "",
    ):
        self.name = name
        self.fn = fn
        self.typed = typed
        self.description = description

    def apply(self, plan: Any) -> Optional[Any]:
        """The rewritten plan if the rule fires at the root, else None."""
        result = self.fn(plan)
        if result is None or result == plan:
            return None
        return result

    def __repr__(self) -> str:
        return "Rewrite(%s)" % self.name


class OptimizeResult(Generic[Plan]):
    """Outcome of an optimization run: final plan plus statistics."""

    def __init__(
        self,
        plan: Plan,
        initial_cost: int,
        final_cost: int,
        passes: int,
        fire_counts: Dict[str, int],
    ):
        self.plan = plan
        self.initial_cost = initial_cost
        self.final_cost = final_cost
        self.passes = passes
        self.fire_counts = fire_counts

    def fired(self, rule_name: str) -> int:
        return self.fire_counts.get(rule_name, 0)

    def __repr__(self) -> str:
        return "OptimizeResult(cost %d → %d in %d passes)" % (
            self.initial_cost,
            self.final_cost,
            self.passes,
        )


#: Local (per-node) rewrite-loop bound; a safety net against rule sets
#: that cycle at a single node.
_MAX_LOCAL_STEPS = 64
#: Global pass bound; the cost guard normally terminates far earlier.
_MAX_PASSES = 64


def rewrite_once(
    plan: Any, rules: Sequence[Rewrite], fire_counts: Optional[Dict[str, int]] = None
) -> Any:
    """One depth-first pass: at every node, apply rules to fixpoint."""
    counts = fire_counts if fire_counts is not None else {}

    def at_node(node: Any) -> Any:
        for _ in range(_MAX_LOCAL_STEPS):
            for rule in rules:
                result = rule.apply(node)
                if result is not None:
                    counts[rule.name] = counts.get(rule.name, 0) + 1
                    node = result
                    break
            else:
                return node
        return node

    return plan.transform_bottom_up(at_node)


def optimize(
    plan: Plan,
    rules: Sequence[Rewrite],
    cost: Cost = size_depth_cost,
) -> OptimizeResult:
    """Optimize ``plan`` with ``rules``, guided by ``cost``.

    Runs depth-first passes and keeps the best-cost plan seen; a pass may
    temporarily increase the cost (e.g. pushdown rules that duplicate a
    sub-plan to unlock eliminations), so the run only stops once the
    plan reaches a fixpoint, revisits a previous state, or fails to
    improve the best cost for a few consecutive passes — "optimization
    proceeds as long as the cost is decreasing" (paper §8).
    """
    fire_counts: Dict[str, int] = {}
    initial_cost = cost(plan)
    current = plan
    best, best_cost = plan, initial_cost
    passes = 0
    stalled = 0
    seen = {plan}
    for _ in range(_MAX_PASSES):
        candidate = rewrite_once(current, rules, fire_counts)
        passes += 1
        if candidate == current:
            break
        candidate_cost = cost(candidate)
        if candidate_cost < best_cost:
            best, best_cost = candidate, candidate_cost
            stalled = 0
        else:
            stalled += 1
            if stalled >= 8:
                break
        if candidate in seen:
            break
        seen.add(candidate)
        current = candidate
    return OptimizeResult(best, initial_cost, best_cost, passes, fire_counts)
