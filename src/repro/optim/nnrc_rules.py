"""NNRC optimizer rules (paper §8: the "NNRC to NNRC opt" stage).

Mostly binder bookkeeping — let inlining, dead-code elimination,
comprehension fusion — plus the record simplifications mirrored from the
algebra side, and constant folding.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.data import operators as ops
from repro.data.model import Bag, DataError
from repro.nnrc import ast
from repro.nnrc.freevars import free_vars, substitute
from repro.optim.engine import Rewrite


def _occurrences(expr: ast.NnrcNode, var: str) -> Tuple[int, bool]:
    """(free occurrence count, any occurrence under a For binder)."""
    if isinstance(expr, ast.Var):
        return (1, False) if expr.name == var else (0, False)
    if isinstance(expr, (ast.Let, ast.For)):
        outer_count, outer_under = _occurrences(expr.children()[0], var)
        if expr.var == var:
            return outer_count, outer_under
        inner_count, inner_under = _occurrences(expr.children()[1], var)
        if isinstance(expr, ast.For):
            inner_under = inner_under or inner_count > 0
        return outer_count + inner_count, outer_under or inner_under
    count, under = 0, False
    for child in expr.children():
        child_count, child_under = _occurrences(child, var)
        count += child_count
        under = under or child_under
    return count, under


def _is_cheap(expr: ast.NnrcNode) -> bool:
    """Expressions safe to duplicate or re-evaluate anywhere."""
    if isinstance(expr, (ast.Var, ast.Const, ast.GetConstant)):
        return True
    if isinstance(expr, ast.Unop) and isinstance(expr.op, ops.OpDot):
        return _is_cheap(expr.arg)
    return False


def let_inline(expr: ast.NnrcNode) -> Optional[ast.NnrcNode]:
    """``let x = e1 in e2 ⇒ e2[e1/x]`` when safe.

    Fires when the definition is cheap, or when ``x`` occurs exactly
    once outside any comprehension body (no work duplication).
    """
    if not isinstance(expr, ast.Let):
        return None
    count, under_for = _occurrences(expr.body, expr.var)
    if _is_cheap(expr.defn) or (count == 1 and not under_for):
        return substitute(expr.body, expr.var, expr.defn)
    return None


def dead_let(expr: ast.NnrcNode) -> Optional[ast.NnrcNode]:
    """``let x = e1 in e2 ⇒ e2`` when x unused (typed: drops e1)."""
    if isinstance(expr, ast.Let) and expr.var not in free_vars(expr.body):
        return expr.body
    return None


def for_nil(expr: ast.NnrcNode) -> Optional[ast.NnrcNode]:
    """``{e | x ∈ ∅} ⇒ ∅``."""
    if (
        isinstance(expr, ast.For)
        and isinstance(expr.source, ast.Const)
        and expr.source.value == Bag([])
    ):
        return ast.Const(Bag([]))
    return None


def for_singleton(expr: ast.NnrcNode) -> Optional[ast.NnrcNode]:
    """``{e | x ∈ {e1}} ⇒ {let x = e1 in e}``."""
    if (
        isinstance(expr, ast.For)
        and isinstance(expr.source, ast.Unop)
        and isinstance(expr.source.op, ops.OpBag)
    ):
        return ast.Unop(
            ops.OpBag(), ast.Let(expr.var, expr.source.arg, expr.body)
        )
    return None


def for_for_fusion(expr: ast.NnrcNode) -> Optional[ast.NnrcNode]:
    """``{e2 | x ∈ {e1 | y ∈ s}} ⇒ {let x = e1 in e2 | y ∈ s}``.

    Requires the inner binder not to capture in ``e2``.
    """
    if not (isinstance(expr, ast.For) and isinstance(expr.source, ast.For)):
        return None
    inner = expr.source
    if inner.var == expr.var or inner.var in free_vars(expr.body):
        return None
    return ast.For(
        inner.var, inner.source, ast.Let(expr.var, inner.body, expr.body)
    )


def for_var_body(expr: ast.NnrcNode) -> Optional[ast.NnrcNode]:
    """``{x | x ∈ s} ⇒ s`` (typed: s must be a bag)."""
    if (
        isinstance(expr, ast.For)
        and isinstance(expr.body, ast.Var)
        and expr.body.name == expr.var
    ):
        return expr.source
    return None


def if_const_cond(expr: ast.NnrcNode) -> Optional[ast.NnrcNode]:
    """``true ? t : e ⇒ t`` and ``false ? t : e ⇒ e``."""
    if isinstance(expr, ast.If) and isinstance(expr.cond, ast.Const):
        if expr.cond.value is True:
            return expr.then
        if expr.cond.value is False:
            return expr.otherwise
    return None


def if_same_branches(expr: ast.NnrcNode) -> Optional[ast.NnrcNode]:
    """``c ? t : t ⇒ t`` (typed: drops c's evaluation)."""
    if isinstance(expr, ast.If) and expr.then == expr.otherwise:
        return expr.then
    return None


def flatten_coll(expr: ast.NnrcNode) -> Optional[ast.NnrcNode]:
    """``flatten({e}) ⇒ e`` (typed: e must be a bag)."""
    if (
        isinstance(expr, ast.Unop)
        and isinstance(expr.op, ops.OpFlatten)
        and isinstance(expr.arg, ast.Unop)
        and isinstance(expr.arg.op, ops.OpBag)
    ):
        return expr.arg.arg
    return None


def flatten_for_coll(expr: ast.NnrcNode) -> Optional[ast.NnrcNode]:
    """``flatten({{e} | x ∈ s}) ⇒ {e | x ∈ s}``."""
    if (
        isinstance(expr, ast.Unop)
        and isinstance(expr.op, ops.OpFlatten)
        and isinstance(expr.arg, ast.For)
        and isinstance(expr.arg.body, ast.Unop)
        and isinstance(expr.arg.body.op, ops.OpBag)
    ):
        inner = expr.arg
        return ast.For(inner.var, inner.source, inner.body.arg)
    return None


def dot_over_rec(expr: ast.NnrcNode) -> Optional[ast.NnrcNode]:
    """``[a: e].a ⇒ e``."""
    if (
        isinstance(expr, ast.Unop)
        and isinstance(expr.op, ops.OpDot)
        and isinstance(expr.arg, ast.Unop)
        and isinstance(expr.arg.op, ops.OpRec)
        and expr.arg.op.field == expr.op.field
    ):
        return expr.arg.arg
    return None


def dot_over_concat(expr: ast.NnrcNode) -> Optional[ast.NnrcNode]:
    """``(e1 ⊕ [a: e2]).a ⇒ e2`` and the non-matching-field variants."""
    if not (
        isinstance(expr, ast.Unop)
        and isinstance(expr.op, ops.OpDot)
        and isinstance(expr.arg, ast.Binop)
        and isinstance(expr.arg.op, ops.OpConcat)
    ):
        return None
    field = expr.op.field
    left, right = expr.arg.left, expr.arg.right
    if isinstance(right, ast.Unop) and isinstance(right.op, ops.OpRec):
        if right.op.field == field:
            return right.arg
        return ast.Unop(ops.OpDot(field), left)
    if (
        isinstance(left, ast.Unop)
        and isinstance(left.op, ops.OpRec)
        and left.op.field != field
    ):
        return ast.Unop(ops.OpDot(field), right)
    return None


def constant_fold(expr: ast.NnrcNode) -> Optional[ast.NnrcNode]:
    """Evaluate operators applied to constants (when they do not error)."""
    if isinstance(expr, ast.Unop) and isinstance(expr.arg, ast.Const):
        if isinstance(expr.op, ops.OpSortBy):
            return None  # order-sensitive output; keep explicit
        try:
            return ast.Const(expr.op.apply(expr.arg.value))
        except DataError:
            return None
    if (
        isinstance(expr, ast.Binop)
        and isinstance(expr.left, ast.Const)
        and isinstance(expr.right, ast.Const)
    ):
        try:
            return ast.Const(expr.op.apply(expr.left.value, expr.right.value))
        except DataError:
            return None
    return None


def nnrc_rules() -> List[Rewrite]:
    """The default NNRC rule set."""
    return [
        Rewrite("nnrc_dead_let", dead_let, typed=True),
        Rewrite("nnrc_let_inline", let_inline, typed=True),
        Rewrite("nnrc_for_nil", for_nil, typed=False),
        Rewrite("nnrc_for_singleton", for_singleton, typed=False),
        Rewrite("nnrc_for_for_fusion", for_for_fusion, typed=False),
        Rewrite("nnrc_for_var_body", for_var_body, typed=True),
        Rewrite("nnrc_if_const_cond", if_const_cond, typed=False),
        Rewrite("nnrc_if_same_branches", if_same_branches, typed=True),
        Rewrite("nnrc_flatten_coll", flatten_coll, typed=True),
        Rewrite("nnrc_flatten_for_coll", flatten_for_coll, typed=False),
        Rewrite("nnrc_dot_over_rec", dot_over_rec, typed=False),
        Rewrite("nnrc_dot_over_concat", dot_over_concat, typed=True),
        Rewrite("nnrc_constant_fold", constant_fold, typed=False),
    ]
