"""The optimizer: rewrite engine, rule catalogs, verification (paper §4, §8)."""

from repro.optim.cost import depth_cost, size_cost, size_depth_cost
from repro.optim.defaults import (
    default_nnrc_rules,
    default_nra_rules,
    default_nraenv_rules,
    optimize_nnrc,
    optimize_nra,
    optimize_nraenv,
)
from repro.optim.engine import OptimizeResult, Rewrite, optimize, rewrite_once
from repro.optim.typed_rules import optimize_nraenv_typed, typed_rewrite_pass

__all__ = [
    "OptimizeResult",
    "Rewrite",
    "default_nnrc_rules",
    "default_nra_rules",
    "default_nraenv_rules",
    "depth_cost",
    "optimize",
    "optimize_nnrc",
    "optimize_nra",
    "optimize_nraenv",
    "optimize_nraenv_typed",
    "rewrite_once",
    "typed_rewrite_pass",
    "size_cost",
    "size_depth_cost",
]
