"""Cost functions for the optimizer (paper §8).

"The cost is currently based on the size and depth of the query" — we
implement exactly that, plus the individual components for metrics
reporting.  The cost function is a parameter of the engine, so richer
models can be plugged in (the paper notes the same).

:func:`node_costs` and :func:`spearman_rank_correlation` support the
EXPLAIN ANALYZE calibration report (:mod:`repro.obs.analyze`): scoring
every subtree with the structural model and checking how well that
ordering tracks measured cardinalities is the groundwork for replacing
the structural model with a data-driven one.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

Cost = Callable[[Any], int]


def size_cost(plan: Any) -> int:
    """Number of operators in the plan."""
    return plan.size()


def depth_cost(plan: Any) -> int:
    """Nesting depth of the plan."""
    return plan.depth()


def size_depth_cost(plan: Any) -> int:
    """The paper's default: size plus depth."""
    return plan.size() + plan.depth()


def node_costs(plan: Any, cost: Cost = size_depth_cost) -> Dict[int, int]:
    """Score every subtree of ``plan``, keyed by node identity.

    The key is ``id(node)`` — the same keying EXPLAIN ANALYZE uses for
    its per-node stats, so the two tables join directly.  The returned
    dict is only valid while ``plan`` (which owns every node) is alive.
    """
    return {id(node): cost(node) for node in plan.walk()}


def _average_ranks(values: Sequence[float]) -> List[float]:
    """Ranks (1-based), ties getting the average of their positions."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = average
        i = j + 1
    return ranks


def spearman_rank_correlation(
    xs: Sequence[float], ys: Sequence[float]
) -> Optional[float]:
    """Spearman's ρ: Pearson correlation of the (tie-averaged) ranks.

    Returns ``None`` when undefined — fewer than two pairs, or either
    side constant (zero rank variance).
    """
    if len(xs) != len(ys):
        raise ValueError("length mismatch: %d vs %d" % (len(xs), len(ys)))
    n = len(xs)
    if n < 2:
        return None
    rx = _average_ranks(xs)
    ry = _average_ranks(ys)
    mean_x = sum(rx) / n
    mean_y = sum(ry) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(rx, ry))
    var_x = sum((a - mean_x) ** 2 for a in rx)
    var_y = sum((b - mean_y) ** 2 for b in ry)
    if var_x == 0.0 or var_y == 0.0:
        return None
    return cov / (var_x * var_y) ** 0.5
