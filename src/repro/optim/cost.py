"""Cost functions for the optimizer (paper §8).

"The cost is currently based on the size and depth of the query" — we
implement exactly that, plus the individual components for metrics
reporting.  The cost function is a parameter of the engine, so richer
models can be plugged in (the paper notes the same).
"""

from __future__ import annotations

from typing import Any, Callable

Cost = Callable[[Any], int]


def size_cost(plan: Any) -> int:
    """Number of operators in the plan."""
    return plan.size()


def depth_cost(plan: Any) -> int:
    """Nesting depth of the plan."""
    return plan.depth()


def size_depth_cost(plan: Any) -> int:
    """The paper's default: size plus depth."""
    return plan.size() + plan.depth()
