"""NRAe-specific rewrites (paper Figure 3).

Two families, exactly as the figure groups them:

- *Environment constructs removal* — eliminate ``Env``/``∘e``/``χe``
  when the environment provably does not matter;
- *∘e pushdown* — push the environment composition towards the leaves,
  where it can be eliminated.

Rule names follow the Coq lemmas the figure links to
(``tappenv_over_env_r_arrow`` etc., shortened).  Every rule here has a
matching property test in ``tests/optim`` asserting Definition 3/4
equivalence on random plans, environments, and data.
"""

from __future__ import annotations

from typing import List, Optional

from repro.data import operators as ops
from repro.nraenv import ast
from repro.nraenv.ignores import ignores_env, ignores_id
from repro.optim.engine import Rewrite


def _is_coll_id(plan: ast.NraeNode) -> bool:
    """Matches ``{In}``."""
    return (
        isinstance(plan, ast.Unop)
        and isinstance(plan.op, ops.OpBag)
        and isinstance(plan.arg, ast.ID)
    )


def _is_flatten(plan: ast.NraeNode) -> bool:
    return isinstance(plan, ast.Unop) and isinstance(plan.op, ops.OpFlatten)


def _is_coll(plan: ast.NraeNode) -> bool:
    return isinstance(plan, ast.Unop) and isinstance(plan.op, ops.OpBag)


# -- Environment constructs removal -----------------------------------------


def appenv_over_env_r(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``q ∘e Env ⇒ q``."""
    if isinstance(plan, ast.AppEnv) and isinstance(plan.before, ast.Env):
        return plan.after
    return None


def appenv_over_env_l(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``Env ∘e q ⇒ q``."""
    if isinstance(plan, ast.AppEnv) and isinstance(plan.after, ast.Env):
        return plan.before
    return None


def appenv_over_ignoreenv(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``if Ie(q1), q1 ∘e q2 ⇒ q1``."""
    if isinstance(plan, ast.AppEnv) and ignores_env(plan.after):
        return plan.after
    return None


def flip_env1(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``χ⟨Env⟩(σ⟨q⟩({In})) ∘e In ⇒ σ⟨q⟩({In}) ∘e In``."""
    if not (isinstance(plan, ast.AppEnv) and isinstance(plan.before, ast.ID)):
        return None
    after = plan.after
    if (
        isinstance(after, ast.Map)
        and isinstance(after.body, ast.Env)
        and isinstance(after.input, ast.Select)
        and _is_coll_id(after.input.input)
    ):
        return ast.AppEnv(after.input, plan.before)
    return None


def flip_env4(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``if Ie(q1), χ⟨Env⟩(σ⟨q1⟩({In})) ∘e q2 ⇒ χ⟨q2⟩(σ⟨q1⟩({In}))``."""
    if not isinstance(plan, ast.AppEnv):
        return None
    after = plan.after
    if (
        isinstance(after, ast.Map)
        and isinstance(after.body, ast.Env)
        and isinstance(after.input, ast.Select)
        and _is_coll_id(after.input.input)
        and ignores_env(after.input.pred)
    ):
        return ast.Map(plan.before, after.input)
    return None


def mapenv_to_env(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``χe⟨Env⟩ ∘ q ⇒ Env`` (typed: requires a bag environment)."""
    if (
        isinstance(plan, ast.App)
        and isinstance(plan.after, ast.MapEnv)
        and isinstance(plan.after.body, ast.Env)
    ):
        return ast.Env()
    return None


def mapenv_over_singleton(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``χe⟨q1⟩ ∘e {q2} ⇒ {q1 ∘e q2}``."""
    if (
        isinstance(plan, ast.AppEnv)
        and isinstance(plan.after, ast.MapEnv)
        and _is_coll(plan.before)
    ):
        return ast.Unop(ops.OpBag(), ast.AppEnv(plan.after.body, plan.before.arg))
    return None


def mapenv_to_map(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``if Ii(q1), χe⟨q1⟩ ∘e q2 ⇒ χ⟨q1 ∘e In⟩(q2)``."""
    if (
        isinstance(plan, ast.AppEnv)
        and isinstance(plan.after, ast.MapEnv)
        and ignores_id(plan.after.body)
    ):
        return ast.Map(ast.AppEnv(plan.after.body, ast.ID()), plan.before)
    return None


# -- ∘e pushdown -------------------------------------------------------------


def appenv_over_unop(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``(⊙q1) ∘e q2 ⇒ ⊙(q1 ∘e q2)``."""
    if isinstance(plan, ast.AppEnv) and isinstance(plan.after, ast.Unop):
        return ast.Unop(plan.after.op, ast.AppEnv(plan.after.arg, plan.before))
    return None


def appenv_over_binop(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``(q1 ⊡ q2) ∘e q ⇒ (q1 ∘e q) ⊡ (q2 ∘e q)``."""
    if isinstance(plan, ast.AppEnv) and isinstance(plan.after, ast.Binop):
        return ast.Binop(
            plan.after.op,
            ast.AppEnv(plan.after.left, plan.before),
            ast.AppEnv(plan.after.right, plan.before),
        )
    return None


def appenv_over_map(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``if Ii(q), χ⟨q1⟩(q2) ∘e q ⇒ χ⟨q1 ∘e q⟩(q2 ∘e q)``."""
    if (
        isinstance(plan, ast.AppEnv)
        and isinstance(plan.after, ast.Map)
        and ignores_id(plan.before)
    ):
        return ast.Map(
            ast.AppEnv(plan.after.body, plan.before),
            ast.AppEnv(plan.after.input, plan.before),
        )
    return None


def appenv_over_select(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``if Ii(q), σ⟨q1⟩(q2) ∘e q ⇒ σ⟨q1 ∘e q⟩(q2 ∘e q)``."""
    if (
        isinstance(plan, ast.AppEnv)
        and isinstance(plan.after, ast.Select)
        and ignores_id(plan.before)
    ):
        return ast.Select(
            ast.AppEnv(plan.after.pred, plan.before),
            ast.AppEnv(plan.after.input, plan.before),
        )
    return None


def appenv_over_appenv(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``(q1 ∘e q2) ∘e q ⇒ q1 ∘e (q2 ∘e q)``."""
    if isinstance(plan, ast.AppEnv) and isinstance(plan.after, ast.AppEnv):
        return ast.AppEnv(
            plan.after.after, ast.AppEnv(plan.after.before, plan.before)
        )
    return None


def appenv_over_app_ie(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``if Ie(q1), (q1 ∘ q2) ∘e q ⇒ q1 ∘ (q2 ∘e q)``."""
    if (
        isinstance(plan, ast.AppEnv)
        and isinstance(plan.after, ast.App)
        and ignores_env(plan.after.after)
    ):
        return ast.App(plan.after.after, ast.AppEnv(plan.after.before, plan.before))
    return None


def appenv_over_env_merge_l(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``if Ie(q1), (Env ⊗ q1) ∘e q ⇒ q ⊗ q1``."""
    if (
        isinstance(plan, ast.AppEnv)
        and isinstance(plan.after, ast.Binop)
        and isinstance(plan.after.op, ops.OpMergeConcat)
        and isinstance(plan.after.left, ast.Env)
        and ignores_env(plan.after.right)
    ):
        return ast.Binop(ops.OpMergeConcat(), plan.before, plan.after.right)
    return None


def flip_env3(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``χ⟨q2⟩(σ⟨q1⟩({In})) ∘e In ⇒ χ⟨q2 ∘e In⟩(σ⟨q1 ∘e In⟩({In}))``.

    Generalises the figure's ``χ⟨Env⟩(σ⟨q⟩({In})) ∘e In`` case: over a
    ``{In}`` singleton the element *is* the input, so the environment
    assignment can move inside both dependent positions, where the other
    rules can eliminate it (``Env ∘e In ⇒ In`` etc.).
    """
    if not (isinstance(plan, ast.AppEnv) and isinstance(plan.before, ast.ID)):
        return None
    after = plan.after
    if not (
        isinstance(after, ast.Map)
        and isinstance(after.input, ast.Select)
        and _is_coll_id(after.input.input)
    ):
        return None
    pred = after.input.pred
    body = after.body
    if isinstance(pred, ast.AppEnv) and isinstance(pred.before, ast.ID) and (
        isinstance(body, ast.AppEnv) and isinstance(body.before, ast.ID)
    ):
        return None  # already flipped
    return ast.Map(
        ast.AppEnv(body, ast.ID()),
        ast.Select(ast.AppEnv(pred, ast.ID()), after.input.input),
    )


def mapenv_over_env_select(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``χe⟨q⟩ ∘e χ⟨Env⟩(σ⟨p⟩({In})) ⇒ χ⟨q⟩(σ⟨p⟩({In}))``.

    The environment is set to a bag whose every element is the *current*
    environment, and whose elements coincide with the current input (the
    selection ranges over ``{In}``), so iterating over it with ``χe`` is
    the same as mapping over the selection with the environment left
    alone.  A CAMP-translation shape (guards feeding binders).
    """
    if not (isinstance(plan, ast.AppEnv) and isinstance(plan.after, ast.MapEnv)):
        return None
    before = plan.before
    if (
        isinstance(before, ast.Map)
        and isinstance(before.body, ast.Env)
        and isinstance(before.input, ast.Select)
        and _is_coll_id(before.input.input)
    ):
        return ast.Map(plan.after.body, before.input)
    return None


def flip_env2(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``σ⟨q⟩({In}) ∘e In ⇒ σ⟨q ∘e In⟩({In})``."""
    if not (isinstance(plan, ast.AppEnv) and isinstance(plan.before, ast.ID)):
        return None
    after = plan.after
    if isinstance(after, ast.Select) and _is_coll_id(after.input):
        if isinstance(after.pred, ast.AppEnv) and isinstance(
            after.pred.before, ast.ID
        ):
            return None  # already in target form; avoid ping-ponging
        return ast.Select(ast.AppEnv(after.pred, ast.ID()), after.input)
    return None


def env_removal_rules() -> List[Rewrite]:
    """The "Environment constructs removal" block of Figure 3."""
    return [
        Rewrite("appenv_over_env_r", appenv_over_env_r, typed=False),
        Rewrite("appenv_over_env_l", appenv_over_env_l, typed=False),
        Rewrite("appenv_over_ignoreenv", appenv_over_ignoreenv, typed=True),
        Rewrite("flip_env1", flip_env1, typed=True),
        Rewrite("flip_env4", flip_env4, typed=True),
        Rewrite("mapenv_to_env", mapenv_to_env, typed=True),
        Rewrite("mapenv_over_singleton", mapenv_over_singleton, typed=False),
        Rewrite("mapenv_to_map", mapenv_to_map, typed=True),
    ]


def appenv_pushdown_rules() -> List[Rewrite]:
    """The "∘e pushdown" block of Figure 3."""
    return [
        Rewrite("appenv_over_unop", appenv_over_unop, typed=False),
        Rewrite("appenv_over_binop", appenv_over_binop, typed=False),
        Rewrite("appenv_over_map", appenv_over_map, typed=True),
        Rewrite("appenv_over_select", appenv_over_select, typed=True),
        Rewrite("appenv_over_appenv", appenv_over_appenv, typed=False),
        Rewrite("appenv_over_app_ie", appenv_over_app_ie, typed=False),
        Rewrite("appenv_over_env_merge_l", appenv_over_env_merge_l, typed=True),
        Rewrite("flip_env2", flip_env2, typed=True),
    ]


def extended_env_rules() -> List[Rewrite]:
    """Environment rewrites beyond the Figure 3 catalog.

    The paper's optimizer has "on the order of a hundred rewrites"; the
    figure shows a selection.  These two cover CAMP-translation shapes
    the figure's rules leave behind (each carries the usual soundness
    property tests).
    """
    return [
        Rewrite("flip_env3", flip_env3, typed=True),
        Rewrite("mapenv_over_env_select", mapenv_over_env_select, typed=True),
    ]


def figure3_rules() -> List[Rewrite]:
    """All Figure 3 rewrites, removal rules first."""
    return env_removal_rules() + appenv_pushdown_rules()
