"""Classic NRA rewrites, lifted to NRAe (paper Figure 12 + §4.2).

These are pure-NRA equivalences; by Theorem 1 they remain valid on NRAe
plans whose sub-plans manipulate the environment, so the optimizer
applies them to NRAe directly — the paper's headline reuse result.

Rule names follow the Coq lemmas linked from Figure 12
(``tdot_over_rec_arrow`` etc., shortened).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.data import operators as ops
from repro.data.model import Record
from repro.nraenv import ast
from repro.nraenv.ignores import ignores_id
from repro.optim.engine import Rewrite


def _is_coll(plan: ast.NraeNode) -> bool:
    return isinstance(plan, ast.Unop) and isinstance(plan.op, ops.OpBag)


def _as_singleton(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """Match a syntactic singleton bag ``{q}`` (or a constant one) → q."""
    from repro.data.model import Bag

    if _is_coll(plan):
        return plan.arg
    if (
        isinstance(plan, ast.Const)
        and isinstance(plan.value, Bag)
        and len(plan.value) == 1
    ):
        return ast.Const(plan.value.items[0])
    return None


def _is_flatten(plan: ast.NraeNode) -> bool:
    return isinstance(plan, ast.Unop) and isinstance(plan.op, ops.OpFlatten)


def _is_rec(plan: ast.NraeNode) -> bool:
    return isinstance(plan, ast.Unop) and isinstance(plan.op, ops.OpRec)


def _is_empty_rec(plan: ast.NraeNode) -> bool:
    return isinstance(plan, ast.Const) and plan.value == Record({})


# -- record algebra ----------------------------------------------------------


def dot_over_rec(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``[a: q].a ⇒ q``."""
    if (
        isinstance(plan, ast.Unop)
        and isinstance(plan.op, ops.OpDot)
        and _is_rec(plan.arg)
        and plan.arg.op.field == plan.op.field
    ):
        return plan.arg.arg
    return None


def _known_fields(plan: ast.NraeNode) -> Optional[Tuple[str, ...]]:
    """Field names of a record-shaped plan, when statically known.

    Recognises ``[a: q]`` and constant records (which constant folding
    produces from the former).
    """
    if _is_rec(plan):
        return (plan.op.field,)
    if isinstance(plan, ast.Const) and isinstance(plan.value, Record):
        return plan.value.domain()
    return None


def _field_plan(plan: ast.NraeNode, field: str) -> ast.NraeNode:
    """The plan computing ``field`` of a known-shape record plan."""
    if _is_rec(plan):
        assert plan.op.field == field
        return plan.arg
    assert isinstance(plan, ast.Const) and isinstance(plan.value, Record)
    return ast.Const(plan.value[field])


def dot_over_concat_eq_r(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``(q1 ⊕ [a2: q2]).a2 ⇒ q2`` (also on constant right records)."""
    if not (
        isinstance(plan, ast.Unop)
        and isinstance(plan.op, ops.OpDot)
        and isinstance(plan.arg, ast.Binop)
        and isinstance(plan.arg.op, ops.OpConcat)
    ):
        return None
    fields = _known_fields(plan.arg.right)
    if fields is not None and plan.op.field in fields:
        return _field_plan(plan.arg.right, plan.op.field)
    return None


def dot_over_concat_neq_r(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``if a1 ≠ a2, (q ⊕ [a2: q2]).a1 ⇒ q.a1``."""
    if not (
        isinstance(plan, ast.Unop)
        and isinstance(plan.op, ops.OpDot)
        and isinstance(plan.arg, ast.Binop)
        and isinstance(plan.arg.op, ops.OpConcat)
    ):
        return None
    fields = _known_fields(plan.arg.right)
    if fields is not None and plan.op.field not in fields:
        return ast.Unop(plan.op, plan.arg.left)
    return None


def dot_over_concat_neq_l(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``if a1 ≠ a2, ([a1: q1] ⊕ q).a2 ⇒ q.a2``."""
    if not (
        isinstance(plan, ast.Unop)
        and isinstance(plan.op, ops.OpDot)
        and isinstance(plan.arg, ast.Binop)
        and isinstance(plan.arg.op, ops.OpConcat)
    ):
        return None
    fields = _known_fields(plan.arg.left)
    if fields is not None and plan.op.field not in fields:
        return ast.Unop(plan.op, plan.arg.right)
    return None


def merge_empty_rec_l(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``[] ⊗ q ⇒ {q}`` (typed: q must be a record)."""
    if (
        isinstance(plan, ast.Binop)
        and isinstance(plan.op, ops.OpMergeConcat)
        and _is_empty_rec(plan.left)
    ):
        return ast.Unop(ops.OpBag(), plan.right)
    return None


def merge_empty_rec_r(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``q ⊗ [] ⇒ {q}`` (typed: q must be a record)."""
    if (
        isinstance(plan, ast.Binop)
        and isinstance(plan.op, ops.OpMergeConcat)
        and _is_empty_rec(plan.right)
    ):
        return ast.Unop(ops.OpBag(), plan.left)
    return None


def product_singletons(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``{[a1: q1]} × {[a2: q2]} ⇒ {[a1: q1] ⊕ [a2: q2]}``."""
    if not isinstance(plan, ast.Product):
        return None
    left = _as_singleton(plan.left)
    right = _as_singleton(plan.right)
    if left is None or right is None:
        return None
    left_ok = _is_rec(left) or (isinstance(left, ast.Const))
    right_ok = _is_rec(right) or (isinstance(right, ast.Const))
    if left_ok and right_ok:
        return ast.Unop(ops.OpBag(), ast.Binop(ops.OpConcat(), left, right))
    return None


# -- composition -------------------------------------------------------------


def app_over_id_l(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``In ∘ q ⇒ q``."""
    if isinstance(plan, ast.App) and isinstance(plan.after, ast.ID):
        return plan.before
    return None


def app_over_id_r(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``q ∘ In ⇒ q`` (companion of ``In ∘ q ⇒ q``)."""
    if isinstance(plan, ast.App) and isinstance(plan.before, ast.ID):
        return plan.after
    return None


def app_over_unop(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``(⊙q1) ∘ q2 ⇒ ⊙(q1 ∘ q2)``."""
    if isinstance(plan, ast.App) and isinstance(plan.after, ast.Unop):
        return ast.Unop(plan.after.op, ast.App(plan.after.arg, plan.before))
    return None


def app_over_binop(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``(q2 ⊡ q1) ∘ q ⇒ (q2 ∘ q) ⊡ (q1 ∘ q)``."""
    if isinstance(plan, ast.App) and isinstance(plan.after, ast.Binop):
        return ast.Binop(
            plan.after.op,
            ast.App(plan.after.left, plan.before),
            ast.App(plan.after.right, plan.before),
        )
    return None


def app_over_ignoreid(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``if Ii(q1), q1 ∘ q2 ⇒ q1``."""
    if isinstance(plan, ast.App) and ignores_id(plan.after):
        return plan.after
    return None


def app_over_app(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``(q1 ∘ q2) ∘ q3 ⇒ q1 ∘ (q2 ∘ q3)`` (associativity)."""
    if isinstance(plan, ast.App) and isinstance(plan.after, ast.App):
        return ast.App(plan.after.after, ast.App(plan.after.before, plan.before))
    return None


def app_over_map(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``χ⟨q1⟩(q2) ∘ q ⇒ χ⟨q1⟩(q2 ∘ q)``."""
    if isinstance(plan, ast.App) and isinstance(plan.after, ast.Map):
        return ast.Map(plan.after.body, ast.App(plan.after.input, plan.before))
    return None


def app_over_select(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``σ⟨q1⟩(q2) ∘ q ⇒ σ⟨q1⟩(q2 ∘ q)`` (companion of app_over_map)."""
    if isinstance(plan, ast.App) and isinstance(plan.after, ast.Select):
        return ast.Select(plan.after.pred, ast.App(plan.after.input, plan.before))
    return None


# -- flatten / map -----------------------------------------------------------


def double_flatten_map_coll(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``flatten(χ⟨χ⟨{q3}⟩(q1)⟩(q2)) ⇒ χ⟨{q3}⟩(flatten(χ⟨q1⟩(q2)))``."""
    if not (_is_flatten(plan) and isinstance(plan.arg, ast.Map)):
        return None
    outer = plan.arg
    if (
        isinstance(outer.body, ast.Map)
        and _is_coll(outer.body.body)
    ):
        inner_map = ast.Map(outer.body.input, outer.input)
        return ast.Map(
            outer.body.body, ast.Unop(ops.OpFlatten(), inner_map)
        )
    return None


def map_over_flatten(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``χ⟨p1⟩(flatten(p2)) ⇒ flatten(χ⟨χ⟨p1⟩(In)⟩(p2))``.

    Size-increasing; defined for completeness (Figure 12) but not in the
    default rule set — its role is to enable fusions, which
    :func:`map_over_flatten_map` captures directly.
    """
    if (
        isinstance(plan, ast.Map)
        and _is_flatten(plan.input)
        and not isinstance(plan.input.arg, ast.Map)
    ):
        inner = ast.Map(ast.Map(plan.body, ast.ID()), plan.input.arg)
        return ast.Unop(ops.OpFlatten(), inner)
    return None


def map_over_flatten_map(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``χ⟨p1⟩(flatten(χ⟨p2⟩(p3))) ⇒ flatten(χ⟨χ⟨p1⟩(p2)⟩(p3))``."""
    if (
        isinstance(plan, ast.Map)
        and _is_flatten(plan.input)
        and isinstance(plan.input.arg, ast.Map)
        and not isinstance(plan.body, ast.ID)
    ):
        inner = plan.input.arg
        return ast.Unop(
            ops.OpFlatten(), ast.Map(ast.Map(plan.body, inner.body), inner.input)
        )
    return None


def flatten_coll(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``flatten({q}) ⇒ q`` (typed: q must be a bag)."""
    if _is_flatten(plan) and _is_coll(plan.arg):
        return plan.arg.arg
    return None


def flatten_map_coll(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``flatten(χ⟨{q1}⟩(q2)) ⇒ χ⟨q1⟩(q2)``."""
    if (
        _is_flatten(plan)
        and isinstance(plan.arg, ast.Map)
        and _is_coll(plan.arg.body)
    ):
        return ast.Map(plan.arg.body.arg, plan.arg.input)
    return None


def map_into_id(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``χ⟨In⟩(q) ⇒ q`` (typed: q must be a bag).

    The paper singles this rule out in §7: it is "never triggered when we
    optimize the NRA query coming directly from CAMP", but fires once the
    NRAe env rewrites have cleaned the plan.
    """
    if isinstance(plan, ast.Map) and isinstance(plan.body, ast.ID):
        return plan.input
    return None


def map_map_compose(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``χ⟨q1⟩(χ⟨q2⟩(q)) ⇒ χ⟨q1 ∘ q2⟩(q)`` (map fusion)."""
    if isinstance(plan, ast.Map) and isinstance(plan.input, ast.Map):
        return ast.Map(ast.App(plan.body, plan.input.body), plan.input.input)
    return None


def map_singleton(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``χ⟨q1⟩({q2}) ⇒ {q1 ∘ q2}`` (also fires on constant singletons)."""
    if isinstance(plan, ast.Map):
        payload = _as_singleton(plan.input)
        if payload is not None:
            return ast.Unop(ops.OpBag(), ast.App(plan.body, payload))
    return None


def map_full_over_select(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``χ⟨q2⟩(σ⟨q1⟩({q})) ⇒ χ⟨q2 ∘ q⟩(σ⟨q1 ∘ q⟩({In}))``.

    Hoists the singleton's payload out of the select; guarded against
    ``q = In`` (where it would be the identity and ping-pong).
    """
    if (
        isinstance(plan, ast.Map)
        and isinstance(plan.input, ast.Select)
        and _is_coll(plan.input.input)
        and not isinstance(plan.input.input.arg, ast.ID)
    ):
        payload = plan.input.input.arg
        return ast.Map(
            ast.App(plan.body, payload),
            ast.Select(
                ast.App(plan.input.pred, payload),
                ast.Unop(ops.OpBag(), ast.ID()),
            ),
        )
    return None


def constant_fold(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """Evaluate operators applied to constants (when they do not error)."""
    from repro.data.model import DataError

    if isinstance(plan, ast.Unop) and isinstance(plan.arg, ast.Const):
        if isinstance(plan.op, ops.OpSortBy):
            return None  # order-sensitive output; keep explicit
        try:
            return ast.Const(plan.op.apply(plan.arg.value))
        except DataError:
            return None
    if (
        isinstance(plan, ast.Binop)
        and isinstance(plan.left, ast.Const)
        and isinstance(plan.right, ast.Const)
    ):
        try:
            return ast.Const(plan.op.apply(plan.left.value, plan.right.value))
        except DataError:
            return None
    return None


def _is_empty_bag(plan: ast.NraeNode) -> bool:
    from repro.data.model import Bag

    return isinstance(plan, ast.Const) and isinstance(plan.value, Bag) and not plan.value


def union_empty(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``q ∪ ∅ ⇒ q`` and ``∅ ∪ q ⇒ q`` (typed: q must be a bag)."""
    if isinstance(plan, ast.Binop) and isinstance(plan.op, ops.OpUnion):
        if _is_empty_bag(plan.right):
            return plan.left
        if _is_empty_bag(plan.left):
            return plan.right
    return None


def map_over_nil(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``χ⟨q⟩(∅) ⇒ ∅`` and ``σ⟨q⟩(∅) ⇒ ∅``."""
    from repro.data.model import Bag

    if isinstance(plan, ast.Map) and _is_empty_bag(plan.input):
        return ast.Const(Bag([]))
    if isinstance(plan, ast.Select) and _is_empty_bag(plan.input):
        return ast.Const(Bag([]))
    return None


def dup_elim(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``if nodupA(q), ♯distinct(q) ⇒ q`` — the paper's §1 example of a
    rewrite with a code-fragment precondition (``tdup_elim``)."""
    from repro.optim.analysis import nodup

    if (
        isinstance(plan, ast.Unop)
        and isinstance(plan.op, ops.OpDistinct)
        and nodup(plan.arg)
    ):
        return plan.arg
    return None


def merge_env_to_left(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``q ⊗ Env ⇒ Env ⊗ q`` (canonical order; ⊗ is commutative).

    When two records are ⊗-compatible their concatenation is the same in
    either order (the overlapping fields are equal), so this is a pure
    canonicalization — it puts ``Env`` first, the shape the Figure 13
    CAMP rules match.
    """
    if (
        isinstance(plan, ast.Binop)
        and isinstance(plan.op, ops.OpMergeConcat)
        and isinstance(plan.right, ast.Env)
        and not isinstance(plan.left, ast.Env)
    ):
        return ast.Binop(ops.OpMergeConcat(), plan.right, plan.left)
    return None


def select_union_distr(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``σ⟨q0⟩(q1 ∪ q2) ⇒ σ⟨q0⟩(q1) ∪ σ⟨q0⟩(q2)`` (the paper's intro rule)."""
    if (
        isinstance(plan, ast.Select)
        and isinstance(plan.input, ast.Binop)
        and isinstance(plan.input.op, ops.OpUnion)
    ):
        return ast.Binop(
            ops.OpUnion(),
            ast.Select(plan.pred, plan.input.left),
            ast.Select(plan.pred, plan.input.right),
        )
    return None


def select_select_and(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """``σ⟨q1⟩(σ⟨q2⟩(q)) ⇒ σ⟨q2 ∧ q1⟩(q)`` (typed; merges select stages)."""
    if isinstance(plan, ast.Select) and isinstance(plan.input, ast.Select):
        return ast.Select(
            ast.Binop(ops.OpAnd(), plan.input.pred, plan.pred),
            plan.input.input,
        )
    return None


def figure12_rules() -> List[Rewrite]:
    """The Figure 12 catalog (plus the trivial companions noted inline)."""
    return [
        Rewrite("dot_over_rec", dot_over_rec, typed=False),
        Rewrite("dot_over_concat_eq_r", dot_over_concat_eq_r, typed=True),
        Rewrite("dot_over_concat_neq_r", dot_over_concat_neq_r, typed=True),
        Rewrite("dot_over_concat_neq_l", dot_over_concat_neq_l, typed=True),
        Rewrite("merge_empty_rec_l", merge_empty_rec_l, typed=True),
        Rewrite("merge_empty_rec_r", merge_empty_rec_r, typed=True),
        Rewrite("product_singletons", product_singletons, typed=False),
        Rewrite("app_over_id_l", app_over_id_l, typed=False),
        Rewrite("app_over_id_r", app_over_id_r, typed=False),
        Rewrite("app_over_unop", app_over_unop, typed=False),
        Rewrite("app_over_binop", app_over_binop, typed=False),
        Rewrite("app_over_ignoreid", app_over_ignoreid, typed=True),
        Rewrite("app_over_app", app_over_app, typed=False),
        Rewrite("app_over_map", app_over_map, typed=False),
        Rewrite("app_over_select", app_over_select, typed=False),
        Rewrite("double_flatten_map_coll", double_flatten_map_coll, typed=False),
        Rewrite("map_over_flatten_map", map_over_flatten_map, typed=False),
        Rewrite("flatten_coll", flatten_coll, typed=True),
        Rewrite("flatten_map_coll", flatten_map_coll, typed=False),
        Rewrite("map_into_id", map_into_id, typed=True),
        Rewrite("map_map_compose", map_map_compose, typed=False),
        Rewrite("map_singleton", map_singleton, typed=False),
        Rewrite("map_full_over_select", map_full_over_select, typed=True),
    ]


def classic_relational_rules() -> List[Rewrite]:
    """A few additional textbook rules used on the SQL path."""
    return [
        Rewrite("select_union_distr", select_union_distr, typed=False),
        Rewrite("select_select_and", select_select_and, typed=True),
        Rewrite("constant_fold", constant_fold, typed=False),
        Rewrite("union_empty", union_empty, typed=True),
        Rewrite("map_over_nil", map_over_nil, typed=False),
        Rewrite("merge_env_to_left", merge_env_to_left, typed=False),
        Rewrite("dup_elim", dup_elim, typed=True),
    ]
