"""NRAe rewrites targeting patterns produced by CAMP compilation (Figure 13).

These four rules recognise the plan shapes the CAMP→NRAe translation
produces (success-singleton bags, merge-based environment extension) and
turn environment iteration back into plain data iteration, unlocking the
classic NRA rules of Figure 12.
"""

from __future__ import annotations

from typing import List, Optional

from repro.data import operators as ops
from repro.nraenv import ast
from repro.optim.engine import Rewrite


def _is_coll_id(plan: ast.NraeNode) -> bool:
    return (
        isinstance(plan, ast.Unop)
        and isinstance(plan.op, ops.OpBag)
        and isinstance(plan.arg, ast.ID)
    )


def _is_flatten(plan: ast.NraeNode) -> bool:
    return isinstance(plan, ast.Unop) and isinstance(plan.op, ops.OpFlatten)


def _match_env_select(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """Match ``χ⟨Env⟩(σ⟨q⟩({In}))`` and return ``q``."""
    if (
        isinstance(plan, ast.Map)
        and isinstance(plan.body, ast.Env)
        and isinstance(plan.input, ast.Select)
        and _is_coll_id(plan.input.input)
    ):
        return plan.input.pred
    return None


def _match_env_merge_rec_id(plan: ast.NraeNode) -> Optional[str]:
    """Match ``Env ⊗ [a: In]`` and return the field name ``a``."""
    if (
        isinstance(plan, ast.Binop)
        and isinstance(plan.op, ops.OpMergeConcat)
        and isinstance(plan.left, ast.Env)
        and isinstance(plan.right, ast.Unop)
        and isinstance(plan.right.op, ops.OpRec)
        and isinstance(plan.right.arg, ast.ID)
    ):
        return plan.right.op.field
    return None


def compose_selects_in_mapenv(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """Figure 13, rule 1::

        flatten(χe⟨χ⟨Env⟩(σ⟨q1⟩({In}))⟩) ∘e χ⟨Env⟩(σ⟨q2⟩({In}))
            ⇒ χ⟨Env⟩(σ⟨q1⟩(σ⟨q2⟩({In})))

    Both sides produce ∅ or ``{γ}`` — a conjunction of two CAMP asserts
    collapses to one select chain.
    """
    if not isinstance(plan, ast.AppEnv):
        return None
    q2 = _match_env_select(plan.before)
    if q2 is None:
        return None
    if not (_is_flatten(plan.after) and isinstance(plan.after.arg, ast.MapEnv)):
        return None
    q1 = _match_env_select(plan.after.arg.body)
    if q1 is None:
        return None
    inner = ast.Select(q2, ast.Unop(ops.OpBag(), ast.ID()))
    return ast.Map(ast.Env(), ast.Select(q1, inner))


def _mapenv_merge_body(body: ast.NraeNode, field: str) -> ast.NraeNode:
    """Build ``(body ∘ Env.a) ∘e In``."""
    return ast.AppEnv(
        ast.App(body, ast.Unop(ops.OpDot(field), ast.Env())), ast.ID()
    )


def appenv_mapenv_to_map(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """Figure 13, rule 2::

        (χe⟨q⟩) ∘e (Env ⊗ [a: In]) ⇒ χ⟨(q ∘ Env.a) ∘e In⟩(Env ⊗ [a: In])

    Sound because every record in ``Env ⊗ [a: In]`` maps ``a`` to the
    current input, so ``Env.a`` recovers the datum inside the map.
    """
    if not (isinstance(plan, ast.AppEnv) and isinstance(plan.after, ast.MapEnv)):
        return None
    field = _match_env_merge_rec_id(plan.before)
    if field is None:
        return None
    return ast.Map(_mapenv_merge_body(plan.after.body, field), plan.before)


def appenv_flatten_mapenv_to_map(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """Figure 13, rule 3 (rule 2 under a flatten)::

        flatten(χe⟨q⟩) ∘e (Env ⊗ [a: In])
            ⇒ flatten(χ⟨(q ∘ Env.a) ∘e In⟩(Env ⊗ [a: In]))
    """
    if not (
        isinstance(plan, ast.AppEnv)
        and _is_flatten(plan.after)
        and isinstance(plan.after.arg, ast.MapEnv)
    ):
        return None
    field = _match_env_merge_rec_id(plan.before)
    if field is None:
        return None
    mapped = ast.Map(_mapenv_merge_body(plan.after.arg.body, field), plan.before)
    return ast.Unop(ops.OpFlatten(), mapped)


def flip_env6(plan: ast.NraeNode) -> Optional[ast.NraeNode]:
    """Figure 13, rule 4::

        χ⟨Env ⊗ In⟩(σ⟨q1⟩(Env ⊗ q2)) ⇒ χ⟨{In}⟩(σ⟨q1⟩(Env ⊗ q2))

    Elements of ``Env ⊗ q2`` already contain the environment, so
    re-merging is the identity (as a singleton).
    """
    if not (
        isinstance(plan, ast.Map)
        and isinstance(plan.body, ast.Binop)
        and isinstance(plan.body.op, ops.OpMergeConcat)
        and isinstance(plan.body.left, ast.Env)
        and isinstance(plan.body.right, ast.ID)
        and isinstance(plan.input, ast.Select)
    ):
        return None
    source = plan.input.input
    if (
        isinstance(source, ast.Binop)
        and isinstance(source.op, ops.OpMergeConcat)
        and isinstance(source.left, ast.Env)
    ):
        return ast.Map(ast.Unop(ops.OpBag(), ast.ID()), plan.input)
    return None


def figure13_rules() -> List[Rewrite]:
    """The Figure 13 catalog."""
    return [
        Rewrite("compose_selects_in_mapenv", compose_selects_in_mapenv, typed=True),
        Rewrite("appenv_mapenv_to_map", appenv_mapenv_to_map, typed=True),
        Rewrite(
            "appenv_flatten_mapenv_to_map", appenv_flatten_mapenv_to_map, typed=True
        ),
        Rewrite("flip_env6", flip_env6, typed=True),
    ]
