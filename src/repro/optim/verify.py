"""Empirical verification of equivalences and rewrites.

The Coq development proves every optimizer rewrite sound; this module is
the Python substitute: it *checks* the same statements on randomly
generated plans, environments, and data.

Two checking modes mirror the paper's two notions:

- **untyped** (Definition 3, strong equivalence): for every environment
  and input, either both sides fail to evaluate, or both produce the
  same value;
- **typed** (Definition 4, typed rewrites): trials where the *source*
  plan fails are discarded (the inputs were not well-typed for it); on
  the rest, the rewritten plan must succeed with the same value.

The random plan generator is schema-directed: it produces plans that are
mostly well-shaped over records ``[a: int, b: int]`` with an environment
record ``[a: int, u: int]`` — the executable stand-in for the paper's
"well-typed plans" quantification — while still exercising error paths.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.data import operators as ops
from repro.data.model import Bag, Record
from repro.nraenv import ast, builders as b
from repro.nraenv.context import ParametricEquivalence, instantiate
from repro.nraenv.eval import EvalError, eval_nraenv
from repro.optim.engine import Rewrite, rewrite_once


class CounterexampleError(AssertionError):
    """Raised when a checked equivalence fails on a concrete input."""


# ---------------------------------------------------------------------------
# Random data
# ---------------------------------------------------------------------------


def random_element(rng: random.Random) -> Record:
    """A random record of the element schema ``[a: int, b: int]``."""
    return Record({"a": rng.randint(0, 5), "b": rng.randint(0, 5)})


def random_element_bag(rng: random.Random, max_len: int = 4) -> Bag:
    return Bag(random_element(rng) for _ in range(rng.randint(0, max_len)))


def random_env_record(rng: random.Random) -> Record:
    """A random environment record ``[a: int, u: int]``.

    Shares field ``a`` with the element schema so that ⊗-merges both
    succeed and fail across trials.
    """
    return Record({"a": rng.randint(0, 5), "u": rng.randint(0, 5)})


def random_datum(rng: random.Random) -> Any:
    choice = rng.random()
    if choice < 0.5:
        return random_element(rng)
    if choice < 0.9:
        return random_element_bag(rng)
    return rng.randint(0, 5)


def random_environment(rng: random.Random, bag_env: bool = False) -> Any:
    if bag_env:
        return Bag(random_env_record(rng) for _ in range(rng.randint(0, 3)))
    return random_env_record(rng)


def random_constants(rng: random.Random) -> dict:
    return {"T": random_element_bag(rng, max_len=5)}


# ---------------------------------------------------------------------------
# Random plans, by sort
# ---------------------------------------------------------------------------


def gen_plan(rng: random.Random, sort: str = "any", depth: int = 2) -> ast.NraeNode:
    """Generate a random plan of the given sort.

    Sorts: ``"bag"`` (bag of element records), ``"pred"`` (boolean over
    an element record input), ``"elem"`` (element record → value),
    ``"record"`` (a record value), ``"any"``.  Generated plans may read
    both ``In`` and ``Env`` — instantiating NRA equivalences with these
    is precisely what Theorem 1 licenses.
    """
    if sort == "bag":
        return _gen_bag(rng, depth)
    if sort == "pred":
        return _gen_pred(rng, depth)
    if sort == "elem":
        return _gen_elem(rng, depth)
    if sort == "record":
        return _gen_record(rng, depth)
    pick = rng.choice(["bag", "pred", "elem", "record"])
    return gen_plan(rng, pick, depth)


def _int_source(rng: random.Random) -> ast.NraeNode:
    return rng.choice(
        [
            b.const(rng.randint(0, 5)),
            b.dot(b.id_(), rng.choice(["a", "b"])),
            b.dot(b.env(), rng.choice(["a", "u"])),
        ]
    )


def _gen_record(rng: random.Random, depth: int) -> ast.NraeNode:
    choices: List[Callable[[], ast.NraeNode]] = [
        lambda: b.id_(),
        lambda: b.const(random_element(rng)),
        lambda: b.rec_field(rng.choice(["a", "b", "c"]), _int_source(rng)),
    ]
    if depth > 0:
        choices.append(
            lambda: b.concat(_gen_record(rng, depth - 1), _gen_record(rng, depth - 1))
        )
        choices.append(lambda: b.env())
    return rng.choice(choices)()


def _gen_elem(rng: random.Random, depth: int) -> ast.NraeNode:
    choices: List[Callable[[], ast.NraeNode]] = [
        lambda: b.id_(),
        lambda: _int_source(rng),
        lambda: _gen_record(rng, depth),
    ]
    if depth > 0:
        choices.append(
            lambda: b.comp(_gen_elem(rng, depth - 1), _gen_record(rng, depth - 1))
        )
        choices.append(
            lambda: b.appenv(
                _gen_elem(rng, depth - 1),
                b.concat(b.env(), _gen_record(rng, depth - 1)),
            )
        )
    return rng.choice(choices)()


def _gen_pred(rng: random.Random, depth: int) -> ast.NraeNode:
    comparison = rng.choice([ops.OpEq(), ops.OpLt(), ops.OpLe()])
    simple = b.binop(comparison, _int_source(rng), _int_source(rng))
    if depth > 0 and rng.random() < 0.3:
        connective = rng.choice([ops.OpAnd(), ops.OpOr()])
        return b.binop(
            connective, simple, _gen_pred(rng, depth - 1)
        )
    if rng.random() < 0.15:
        return b.neg(simple)
    return simple


def _gen_bag(rng: random.Random, depth: int) -> ast.NraeNode:
    choices: List[Callable[[], ast.NraeNode]] = [
        lambda: b.const(random_element_bag(rng)),
        lambda: b.table("T"),
        lambda: b.coll(_gen_record(rng, max(depth - 1, 0))),
    ]
    if depth > 0:
        choices.extend(
            [
                lambda: b.union(_gen_bag(rng, depth - 1), _gen_bag(rng, depth - 1)),
                lambda: b.sigma(_gen_pred(rng, depth - 1), _gen_bag(rng, depth - 1)),
                lambda: b.chi(_gen_record(rng, depth - 1), _gen_bag(rng, depth - 1)),
                lambda: b.appenv(
                    _gen_bag(rng, depth - 1),
                    b.concat(b.env(), _gen_record(rng, depth - 1)),
                ),
                lambda: b.merge(b.env(), _gen_record(rng, depth - 1)),
            ]
        )
    return rng.choice(choices)()


# ---------------------------------------------------------------------------
# Equivalence checking
# ---------------------------------------------------------------------------

_FAILED = object()


def _run(plan: ast.NraeNode, env: Any, datum: Any, constants: dict) -> Any:
    try:
        return eval_nraenv(plan, env, datum, constants)
    except EvalError:
        return _FAILED


def check_plans_equivalent(
    lhs: ast.NraeNode,
    rhs: ast.NraeNode,
    trials: int = 100,
    typed: bool = False,
    seed: int = 0,
    bag_env: bool = False,
) -> int:
    """Check Definition 3/4 equivalence of two plans on random inputs.

    Returns the number of *informative* trials (both sides evaluated, or
    matching failures in untyped mode).  Raises
    :class:`CounterexampleError` on disagreement.
    """
    rng = random.Random(seed)
    informative = 0
    for trial in range(trials):
        env = random_environment(rng, bag_env=bag_env or rng.random() < 0.2)
        datum = random_datum(rng)
        constants = random_constants(rng)
        left = _run(lhs, env, datum, constants)
        right = _run(rhs, env, datum, constants)
        if typed and (left is _FAILED or right is _FAILED):
            # Definition 4 only quantifies over well-typed inputs; without
            # a per-trial typing derivation we treat any failure as
            # evidence the trial was ill-typed.  Typed rules additionally
            # get hand-written tests on well-typed inputs where success
            # is required (see tests/optim).
            continue
        if left is _FAILED and right is _FAILED:
            informative += 1
            continue
        if left is _FAILED or right is _FAILED or left != right:
            raise CounterexampleError(
                "plans disagree on trial %d:\n  lhs: %r\n  rhs: %r\n"
                "  env=%r datum=%r constants=%r\n  lhs value: %r\n  rhs value: %r"
                % (trial, lhs, rhs, env, datum, constants, left, right)
            )
        informative += 1
    return informative


def check_rewrite(
    rule: Rewrite,
    plan_samples: Sequence[ast.NraeNode],
    trials_per_plan: int = 40,
    seed: int = 0,
) -> int:
    """Check a rewrite rule against plans where it fires.

    For each sample plan, applies the rule everywhere it matches (one
    engine pass restricted to this rule) and, when the plan changed,
    checks equivalence of the original and rewritten plans.  Returns how
    many sample plans actually exercised the rule.
    """
    fired = 0
    for index, plan in enumerate(plan_samples):
        rewritten = rewrite_once(plan, [rule])
        if rewritten == plan:
            continue
        fired += 1
        check_plans_equivalent(
            plan,
            rewritten,
            trials=trials_per_plan,
            typed=rule.typed,
            seed=seed + index,
        )
    return fired


def check_parametric_equivalence(
    equiv: ParametricEquivalence,
    instantiations: int = 25,
    trials_per_instantiation: int = 25,
    seed: int = 0,
    env_using: bool = True,
) -> int:
    """Empirically check ``≡ec`` for a parametric equivalence (Thm 1).

    Instantiates the plan variables with random plans of the declared
    sorts — including environment-reading plans when ``env_using`` —
    and checks every instantiation on random inputs.  This is the
    executable reading of Theorem 1's conclusion.
    """
    rng = random.Random(seed)
    checked = 0
    for round_index in range(instantiations):
        args = []
        for index in range(equiv.arity):
            sort = equiv.sort_of(index)
            plan = gen_plan(rng, sort, depth=2)
            if not env_using:
                # restrict to the pure-NRA fragment (≡c rather than ≡ec)
                while not ast.is_nra(plan):
                    plan = gen_plan(rng, sort, depth=2)
            args.append(plan)
        lhs, rhs = equiv.instantiate(args)
        check_plans_equivalent(
            lhs,
            rhs,
            trials=trials_per_instantiation,
            typed=True,
            seed=seed * 1000 + round_index,
        )
        checked += 1
    return checked


def random_plans(count: int, seed: int = 0, depth: int = 3) -> List[ast.NraeNode]:
    """A deterministic batch of random plans (rewrite-check fodder)."""
    rng = random.Random(seed)
    return [gen_plan(rng, "any", depth) for _ in range(count)]
