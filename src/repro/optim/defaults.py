"""Default optimizer configurations (paper §8).

The NRAe optimizer mixes the paper's "two distinct categories of
rewrites: (i) NRAe rewrites like the ones presented in Section 4.3, and
(ii) classic NRA rewrites lifted to NRAe" — plus the CAMP-targeted
shapes of Figure 13, ordered first so they fire before generic rules
rearrange their patterns.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.optim.camp_specific_rules import figure13_rules
from repro.optim.cost import size_depth_cost
from repro.optim.engine import OptimizeResult, Rewrite, optimize
from repro.optim.nnrc_rules import nnrc_rules
from repro.optim.nra_lifted_rules import classic_relational_rules, figure12_rules
from repro.optim.nraenv_rules import extended_env_rules, figure3_rules


def default_nraenv_rules() -> List[Rewrite]:
    """The full NRAe rule set (Figures 13 + 3 + extensions + 12 + classics)."""
    return (
        figure13_rules()
        + figure3_rules()
        + extended_env_rules()
        + figure12_rules()
        + classic_relational_rules()
    )


def default_nra_rules() -> List[Rewrite]:
    """Pure-NRA rules only — used on the direct CAMP→NRA path (Figure 9).

    This is exactly the "(ii) classic NRA rewrites" category; the
    comparison of Figure 9 is NRA-with-only-these vs NRAe-with-all.
    """
    return figure12_rules() + classic_relational_rules()


def default_nnrc_rules() -> List[Rewrite]:
    return nnrc_rules()


def optimize_nraenv(plan, rules: Sequence[Rewrite] = None) -> OptimizeResult:
    """Optimize an NRAe plan with the default (or given) rule set."""
    return optimize(plan, rules or default_nraenv_rules(), size_depth_cost)


def optimize_nra(plan, rules: Sequence[Rewrite] = None) -> OptimizeResult:
    """Optimize a pure-NRA plan with NRA rules only."""
    return optimize(plan, rules or default_nra_rules(), size_depth_cost)


def optimize_nnrc(expr, rules: Sequence[Rewrite] = None) -> OptimizeResult:
    """Optimize an NNRC expression with the default (or given) rule set."""
    return optimize(expr, rules or default_nnrc_rules(), size_depth_cost)
