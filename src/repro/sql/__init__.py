"""The SQL frontend: lexer, parser, AST, and translation to NRAe (paper §6)."""

from repro.sql.lexer import SqlSyntaxError
from repro.sql.parser import parse_query, parse_sql
from repro.sql.to_nraenv import SqlTranslationError, sql_to_nraenv

__all__ = [
    "SqlSyntaxError",
    "SqlTranslationError",
    "parse_query",
    "parse_sql",
    "sql_to_nraenv",
]
