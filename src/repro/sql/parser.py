"""Recursive-descent parser for the SQL subset (paper §6).

Covers the grammar needed by 21 of the 22 TPC-H queries: select-from-
where with group by / having / order by / distinct / limit, nested and
correlated subqueries, set operations, exists / in / between / like /
case, aggregates, date and interval literals, extract and substring,
with-as clauses, and create/drop view statements.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.data.foreign import DateValue
from repro.sql import ast
from repro.sql.lexer import SqlSyntaxError, Token, TokenStream, tokenize

_AGGREGATES = ("count", "sum", "avg", "min", "max")
_QUERY_TERMINATORS = (
    "from",
    "where",
    "group",
    "having",
    "order",
    "limit",
    "union",
    "intersect",
    "except",
    "then",
    "else",
    "when",
    "end",
    "and",
    "or",
    "on",
    "as",
    "asc",
    "desc",
)


def parse_sql(text: str) -> ast.Script:
    """Parse a SQL script (view statements + queries) into an AST."""
    stream = TokenStream(tokenize(text))
    statements: List[ast.SqlNode] = []
    while not stream.exhausted:
        statements.append(_parse_statement(stream))
        while stream.accept_symbol(";"):
            pass
    if not statements:
        raise SqlSyntaxError("empty SQL input")
    return ast.Script(statements)


def parse_query(text: str) -> ast.Query:
    """Parse a single SQL query (no view statements)."""
    stream = TokenStream(tokenize(text))
    query = _parse_query(stream)
    stream.accept_symbol(";")
    if not stream.exhausted:
        token = stream.peek()
        raise SqlSyntaxError(
            "trailing input at position %d: %r" % (token.position, token.value)
        )
    return query


def _parse_statement(stream: TokenStream) -> ast.SqlNode:
    if stream.at_keyword("create"):
        return _parse_create_view(stream)
    if stream.at_keyword("drop"):
        stream.expect_keyword("drop")
        stream.expect_keyword("view")
        return ast.DropView(stream.expect_ident())
    return _parse_query(stream)


def _parse_create_view(stream: TokenStream) -> ast.CreateView:
    stream.expect_keyword("create")
    stream.expect_keyword("view")
    name = stream.expect_ident()
    columns: List[str] = []
    if stream.accept_symbol("("):
        columns.append(stream.expect_ident())
        while stream.accept_symbol(","):
            columns.append(stream.expect_ident())
        stream.expect_symbol(")")
    stream.expect_keyword("as")
    query = _parse_query(stream)
    return ast.CreateView(name, columns, query)


def _parse_query(stream: TokenStream) -> ast.Query:
    ctes: List[Tuple[str, ast.Query]] = []
    if stream.accept_keyword("with"):
        while True:
            name = stream.expect_ident()
            columns: List[str] = []
            if stream.accept_symbol("("):
                columns.append(stream.expect_ident())
                while stream.accept_symbol(","):
                    columns.append(stream.expect_ident())
                stream.expect_symbol(")")
            stream.expect_keyword("as")
            stream.expect_symbol("(")
            ctes.append((name, _parse_query(stream), columns))
            stream.expect_symbol(")")
            if not stream.accept_symbol(","):
                break
    body = _parse_set_expr(stream)
    return ast.Query(body, ctes)


def _parse_set_expr(stream: TokenStream) -> ast.SqlNode:
    left = _parse_select_operand(stream)
    while stream.at_keyword("union", "intersect", "except"):
        op = stream.next().value
        all_flag = bool(stream.accept_keyword("all"))
        right = _parse_select_operand(stream)
        left = ast.SetOp(op, _as_query(left), _as_query(right), all_flag)
    return left


def _as_query(node: ast.SqlNode) -> ast.Query:
    return node if isinstance(node, ast.Query) else ast.Query(node)


def _parse_select_operand(stream: TokenStream) -> ast.SqlNode:
    if stream.accept_symbol("("):
        inner = _parse_query(stream)
        stream.expect_symbol(")")
        return inner
    return _parse_select(stream)


def _parse_select(stream: TokenStream) -> ast.Select:
    stream.expect_keyword("select")
    distinct = bool(stream.accept_keyword("distinct"))
    stream.accept_keyword("all")
    items = [_parse_select_item(stream)]
    while stream.accept_symbol(","):
        items.append(_parse_select_item(stream))
    from_items: List[ast.SqlNode] = []
    if stream.accept_keyword("from"):
        from_items.append(_parse_from_item(stream))
        while stream.accept_symbol(","):
            from_items.append(_parse_from_item(stream))
    where = None
    if stream.accept_keyword("where"):
        where = _parse_expr(stream)
    group_by: List[ast.SqlNode] = []
    if stream.accept_keyword("group"):
        stream.expect_keyword("by")
        group_by.append(_parse_expr(stream))
        while stream.accept_symbol(","):
            group_by.append(_parse_expr(stream))
    having = None
    if stream.accept_keyword("having"):
        having = _parse_expr(stream)
    order_by: List[ast.OrderItem] = []
    if stream.accept_keyword("order"):
        stream.expect_keyword("by")
        order_by.append(_parse_order_item(stream))
        while stream.accept_symbol(","):
            order_by.append(_parse_order_item(stream))
    limit = None
    if stream.accept_keyword("limit"):
        if stream.at_symbol("-"):
            raise SqlSyntaxError("LIMIT requires a non-negative integer literal")
        limit = int(stream.expect_number())
    return ast.Select(
        items,
        from_items,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        distinct=distinct,
        limit=limit,
    )


def _parse_select_item(stream: TokenStream) -> ast.SelectItem:
    if stream.at_symbol("*"):
        stream.next()
        return ast.SelectItem(ast.Star())
    expr = _parse_expr(stream)
    alias = None
    if stream.accept_keyword("as"):
        alias = stream.expect_ident()
    elif stream.peek().kind == "ident" and not stream.at_keyword(*_QUERY_TERMINATORS):
        alias = stream.expect_ident()
    return ast.SelectItem(expr, alias)


def _parse_from_item(stream: TokenStream) -> ast.SqlNode:
    if stream.accept_symbol("("):
        query = _parse_query(stream)
        stream.expect_symbol(")")
        stream.accept_keyword("as")
        alias = stream.expect_ident()
        return ast.SubqueryRef(query, alias)
    name = stream.expect_ident()
    alias = None
    if stream.accept_keyword("as"):
        alias = stream.expect_ident()
    elif stream.peek().kind == "ident" and not stream.at_keyword(*_QUERY_TERMINATORS):
        alias = stream.expect_ident()
    return ast.TableRef(name, alias)


def _parse_order_item(stream: TokenStream) -> ast.OrderItem:
    expr = _parse_expr(stream)
    descending = False
    if stream.accept_keyword("desc"):
        descending = True
    else:
        stream.accept_keyword("asc")
    return ast.OrderItem(expr, descending)


# -- expressions ---------------------------------------------------------------


def _parse_expr(stream: TokenStream) -> ast.SqlNode:
    return _parse_or(stream)


def _parse_or(stream: TokenStream) -> ast.SqlNode:
    left = _parse_and(stream)
    while stream.accept_keyword("or"):
        left = ast.BinaryExpr("or", left, _parse_and(stream))
    return left


def _parse_and(stream: TokenStream) -> ast.SqlNode:
    left = _parse_not(stream)
    while stream.accept_keyword("and"):
        left = ast.BinaryExpr("and", left, _parse_not(stream))
    return left


def _parse_not(stream: TokenStream) -> ast.SqlNode:
    if stream.accept_keyword("not"):
        return ast.UnaryExpr("not", _parse_not(stream))
    return _parse_predicate(stream)


def _parse_predicate(stream: TokenStream) -> ast.SqlNode:
    left = _parse_additive(stream)
    negated = bool(stream.accept_keyword("not"))
    if stream.accept_keyword("between"):
        low = _parse_additive(stream)
        stream.expect_keyword("and")
        high = _parse_additive(stream)
        return ast.Between(left, low, high, negated)
    if stream.accept_keyword("in"):
        stream.expect_symbol("(")
        if stream.at_keyword("select", "with"):
            query = _parse_query(stream)
            stream.expect_symbol(")")
            return ast.InQuery(left, query, negated)
        items = [_parse_expr(stream)]
        while stream.accept_symbol(","):
            items.append(_parse_expr(stream))
        stream.expect_symbol(")")
        return ast.InList(left, items, negated)
    if stream.accept_keyword("like"):
        pattern = stream.expect_string()
        return ast.Like(left, pattern, negated)
    if negated:
        raise SqlSyntaxError(
            "expected BETWEEN/IN/LIKE after NOT at position %d" % stream.peek().position
        )
    for symbol, op in (
        ("<=", "<="),
        (">=", ">="),
        ("<>", "<>"),
        ("!=", "<>"),
        ("=", "="),
        ("<", "<"),
        (">", ">"),
    ):
        if stream.at_symbol(symbol):
            stream.next()
            return ast.BinaryExpr(op, left, _parse_additive(stream))
    return left


def _parse_additive(stream: TokenStream) -> ast.SqlNode:
    left = _parse_multiplicative(stream)
    while True:
        if stream.at_symbol("+", "-"):
            op = stream.next().value
            left = ast.BinaryExpr(op, left, _parse_multiplicative(stream))
        elif stream.at_symbol("||"):
            stream.next()
            left = ast.BinaryExpr("||", left, _parse_multiplicative(stream))
        else:
            return left


def _parse_multiplicative(stream: TokenStream) -> ast.SqlNode:
    left = _parse_unary(stream)
    while stream.at_symbol("*", "/"):
        op = stream.next().value
        left = ast.BinaryExpr(op, left, _parse_unary(stream))
    return left


def _parse_unary(stream: TokenStream) -> ast.SqlNode:
    if stream.accept_symbol("-"):
        return ast.UnaryExpr("-", _parse_unary(stream))
    if stream.accept_symbol("+"):
        return _parse_unary(stream)
    return _parse_primary(stream)


def _parse_primary(stream: TokenStream) -> ast.SqlNode:
    token = stream.peek()
    if token.kind == "number":
        stream.next()
        text = token.value
        return ast.Literal(float(text) if "." in text else int(text))
    if token.kind == "string":
        stream.next()
        return ast.Literal(token.value)
    if token.kind == "param":
        stream.next()
        return ast.Param(token.value)
    if stream.accept_symbol("("):
        if stream.at_keyword("select", "with"):
            query = _parse_query(stream)
            stream.expect_symbol(")")
            return ast.ScalarQuery(query)
        expr = _parse_expr(stream)
        stream.expect_symbol(")")
        return expr
    if token.kind != "ident":
        raise SqlSyntaxError(
            "unexpected token %r at position %d" % (token.value, token.position)
        )
    word = token.value
    if word == "date":
        stream.next()
        return ast.Literal(DateValue.parse(stream.expect_string()))
    if word == "interval":
        stream.next()
        amount = int(stream.expect_string())
        unit = stream.expect_ident()
        if unit.endswith("s"):
            unit = unit[:-1]
        if unit not in ("day", "month", "year"):
            raise SqlSyntaxError("unsupported interval unit %r" % unit)
        return ast.Interval(amount, unit)
    if word == "true":
        stream.next()
        return ast.Literal(True)
    if word == "false":
        stream.next()
        return ast.Literal(False)
    if word == "case":
        return _parse_case(stream)
    if word == "exists":
        stream.next()
        stream.expect_symbol("(")
        query = _parse_query(stream)
        stream.expect_symbol(")")
        return ast.Exists(query)
    if word == "extract":
        stream.next()
        stream.expect_symbol("(")
        part = stream.expect_ident()
        stream.expect_keyword("from")
        expr = _parse_expr(stream)
        stream.expect_symbol(")")
        return ast.Extract(part, expr)
    if word == "substring":
        stream.next()
        stream.expect_symbol("(")
        expr = _parse_expr(stream)
        stream.expect_keyword("from")
        start = _parse_signed_int(stream)
        length = None
        if stream.accept_keyword("for"):
            length = _parse_signed_int(stream)
        stream.expect_symbol(")")
        return ast.Substring(expr, start, length)
    if word in _AGGREGATES and stream.peek(1).kind == "symbol" and stream.peek(1).value == "(":
        stream.next()
        stream.expect_symbol("(")
        distinct = bool(stream.accept_keyword("distinct"))
        if stream.accept_symbol("*"):
            arg: Optional[ast.SqlNode] = None
        else:
            arg = _parse_expr(stream)
        stream.expect_symbol(")")
        return ast.Aggregate(word, arg, distinct)
    stream.next()
    if stream.accept_symbol("."):
        column = stream.expect_ident()
        return ast.Column(column, table=word)
    return ast.Column(word)


def _parse_signed_int(stream: TokenStream) -> int:
    """An integer literal with an optional leading ``-`` (the lexer
    emits ``-`` as a symbol, so negative literals arrive in two tokens)."""
    negative = bool(stream.accept_symbol("-"))
    number = int(stream.expect_number())
    return -number if negative else number


def _parse_case(stream: TokenStream) -> ast.Case:
    stream.expect_keyword("case")
    branches: List[Tuple[ast.SqlNode, ast.SqlNode]] = []
    while stream.accept_keyword("when"):
        cond = _parse_expr(stream)
        stream.expect_keyword("then")
        value = _parse_expr(stream)
        branches.append((cond, value))
    otherwise = None
    if stream.accept_keyword("else"):
        otherwise = _parse_expr(stream)
    stream.expect_keyword("end")
    if not branches:
        raise SqlSyntaxError("CASE requires at least one WHEN branch")
    return ast.Case(branches, otherwise)
