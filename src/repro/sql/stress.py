"""A generated SQL stress family (the TPC-DS substitute; see DESIGN.md).

The paper additionally tried TPC-DS: 37/99 queries compiled (rollup and
windowing are unsupported), the largest plan was ~2200 operators and
took ~11 s, "most of the compilation time is spent on rewriting".  The
TPC-DS texts are not available offline, so this module generates a
family with the same two properties the paper's remark is about:

- ``supported_query(n)`` — deeply nested/unioned select towers whose
  compiled plans grow into the thousands of operators, to measure how
  compile time scales with plan size;
- ``unsupported_queries()`` — queries using rollup, windowing, and outer
  joins, to measure graceful rejection of unsupported features.
"""

from __future__ import annotations

from typing import List, Tuple


def supported_query(levels: int) -> str:
    """A select tower with ``levels`` of nesting, unions, and subqueries.

    Each level wraps the previous in a FROM-subquery, adds a correlated
    EXISTS, a CASE, and a UNION arm — the construct mix that makes
    TPC-DS plans large.
    """
    query = (
        "select l_orderkey, l_extendedprice as price0, l_quantity as qty0 "
        "from lineitem where l_quantity < 50"
    )
    for level in range(1, levels + 1):
        previous_price = "price%d" % (level - 1)
        previous_qty = "qty%d" % (level - 1)
        query = (
            "select l_orderkey, "
            "case when {prev_price} > {threshold} then {prev_price} * 1.1 "
            "else {prev_price} end as price{level}, "
            "{prev_qty} as qty{level} "
            "from ( {inner} ) as t{level} "
            "where exists (select * from orders "
            "where o_orderkey = l_orderkey and o_totalprice > {threshold}) "
            "union all "
            "select l_orderkey, {threshold}.0 as price{level}, 0 as qty{level} "
            "from ( {inner} ) as u{level} where {prev_qty} > {threshold}"
        ).format(
            inner=query,
            level=level,
            prev_price=previous_price,
            prev_qty=previous_qty,
            threshold=level * 10,
        )
    return query


def unsupported_queries() -> List[Tuple[str, str]]:
    """(name, text) pairs using features outside the supported subset."""
    return [
        (
            "rollup",
            "select l_returnflag, sum(l_quantity) from lineitem "
            "group by rollup (l_returnflag)",
        ),
        (
            "window",
            "select l_orderkey, rank() over (order by l_quantity) from lineitem",
        ),
        (
            "left_outer_join",
            "select c_custkey, o_orderkey from customer "
            "left outer join orders on c_custkey = o_custkey",
        ),
        (
            "grouping_sets",
            "select l_returnflag, l_linestatus, count(*) from lineitem "
            "group by grouping sets ((l_returnflag), (l_linestatus))",
        ),
    ]
