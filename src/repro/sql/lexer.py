"""Tokenizer for the SQL subset."""

from __future__ import annotations

from typing import List, NamedTuple, Optional


class SqlSyntaxError(ValueError):
    """Raised on malformed SQL input."""


class Token(NamedTuple):
    kind: str  # "ident" | "number" | "string" | "symbol" | "param" | "end"
    value: str
    position: int


_SYMBOLS = [
    "<=",
    ">=",
    "<>",
    "!=",
    "||",
    "(",
    ")",
    ",",
    ";",
    ":",
    "+",
    "-",
    "*",
    "/",
    "=",
    "<",
    ">",
    ".",
]


def tokenize(text: str) -> List[Token]:
    """Split SQL text into tokens; identifiers are lower-cased."""
    tokens: List[Token] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = length if end == -1 else end + 1
            continue
        if ch == "'":
            j = i + 1
            parts: List[str] = []
            while True:
                if j >= length:
                    raise SqlSyntaxError("unterminated string literal at %d" % i)
                if text[j] == "'":
                    if j + 1 < length and text[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token("string", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < length and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # a dot not followed by a digit is a qualifier, not a decimal
                    if j + 1 >= length or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("ident", text[i:j].lower(), i))
            i = j
            continue
        if ch == "$":
            j = i + 1
            while j < length and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise SqlSyntaxError("expected parameter name after '$' at %d" % i)
            tokens.append(Token("param", text[i + 1 : j].lower(), i))
            i = j
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token("symbol", symbol, i))
                i += len(symbol)
                break
        else:
            raise SqlSyntaxError("unexpected character %r at %d" % (ch, i))
    tokens.append(Token("end", "", length))
    return tokens


class TokenStream:
    """A cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "end":
            self._index += 1
        return token

    def at_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        return token.kind == "ident" and token.value in keywords

    def at_symbol(self, *symbols: str) -> bool:
        token = self.peek()
        return token.kind == "symbol" and token.value in symbols

    def accept_keyword(self, *keywords: str) -> Optional[str]:
        if self.at_keyword(*keywords):
            return self.next().value
        return None

    def accept_symbol(self, *symbols: str) -> Optional[str]:
        if self.at_symbol(*symbols):
            return self.next().value
        return None

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise SqlSyntaxError(
                "expected %r at position %d, found %r"
                % (keyword, self.peek().position, self.peek().value)
            )

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            raise SqlSyntaxError(
                "expected %r at position %d, found %r"
                % (symbol, self.peek().position, self.peek().value)
            )

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident":
            raise SqlSyntaxError(
                "expected identifier at position %d, found %r"
                % (token.position, token.value)
            )
        return self.next().value

    def expect_number(self) -> str:
        token = self.peek()
        if token.kind != "number":
            raise SqlSyntaxError(
                "expected number at position %d, found %r" % (token.position, token.value)
            )
        return self.next().value

    def expect_string(self) -> str:
        token = self.peek()
        if token.kind != "string":
            raise SqlSyntaxError(
                "expected string at position %d, found %r" % (token.position, token.value)
            )
        return self.next().value

    @property
    def exhausted(self) -> bool:
        return self.peek().kind == "end"
