"""AST for the SQL subset (paper §6).

The paper's compiler "supports full select-from-where blocks including
group by and order by, nested queries, set operations (union, intersect,
except), exists, between, view definitions, with clauses, case
expressions, comparisons, aggregations, and essential operators on
atomic types, including dates" — enough for 21 of the 22 TPC-H queries
(everything but q13's left outer join).  This AST covers exactly that
subset.

Nodes expose ``size()``/``depth()`` so Figure 7 can report SQL query
size and depth alongside the algebra's.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple


class SqlNode:
    """Base class for SQL AST nodes.

    ``_fields`` names the attributes holding children (single nodes,
    lists of nodes, or non-node payloads — non-nodes are skipped when
    traversing).
    """

    _fields: Tuple[str, ...] = ()

    def children(self) -> List["SqlNode"]:
        out: List[SqlNode] = []
        for field in self._fields:
            value = getattr(self, field)
            if isinstance(value, SqlNode):
                out.append(value)
            elif isinstance(value, (list, tuple)):
                out.extend(v for v in value if isinstance(v, SqlNode))
        return out

    def size(self) -> int:
        """Number of AST nodes (Figure 7a's "SQL size")."""
        return 1 + sum(child.size() for child in self.children())

    def depth(self) -> int:
        """Query-block nesting depth (Figure 7b's "SQL query depth")."""
        child_depths = [child.depth() for child in self.children()]
        deepest = max(child_depths) if child_depths else 0
        return deepest + (1 if isinstance(self, Query) else 0)

    def __eq__(self, other: Any) -> bool:
        if type(self) is not type(other):
            return NotImplemented if not isinstance(other, SqlNode) else False
        return all(
            getattr(self, field) == getattr(other, field) for field in self._fields
        )

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        body = ", ".join("%s=%r" % (f, getattr(self, f)) for f in self._fields)
        return "%s(%s)" % (type(self).__name__, body)


# -- expressions ---------------------------------------------------------------


class Literal(SqlNode):
    """A number, string, boolean, date, or interval literal."""

    _fields = ("value",)

    def __init__(self, value: Any):
        self.value = value


class Param(SqlNode):
    """A named query parameter: ``$name``, bound at execution time.

    Parameters compile to constant-environment accesses (the key is the
    ``$``-prefixed name, which no table can shadow), so a prepared query
    is compiled once and executed many times with different bindings —
    see :mod:`repro.service`.
    """

    _fields = ("name",)

    def __init__(self, name: str):
        self.name = name


class Interval(SqlNode):
    """``interval 'n' day|month|year`` (normalised to days for day/…)."""

    _fields = ("amount", "unit")

    def __init__(self, amount: int, unit: str):
        self.amount = amount
        self.unit = unit  # "day" | "month" | "year"


class Column(SqlNode):
    """A column reference, possibly qualified: ``l_extendedprice``, ``s.id``."""

    _fields = ("table", "name")

    def __init__(self, name: str, table: Optional[str] = None):
        self.table = table
        self.name = name


class Star(SqlNode):
    """``*`` in a select list or ``count(*)``."""

    _fields = ()


class UnaryExpr(SqlNode):
    """``-e`` or ``not e``."""

    _fields = ("op", "operand")

    def __init__(self, op: str, operand: SqlNode):
        self.op = op  # "-" | "not"
        self.operand = operand


class BinaryExpr(SqlNode):
    """Arithmetic, comparison, or boolean binary expression."""

    _fields = ("op", "left", "right")

    def __init__(self, op: str, left: SqlNode, right: SqlNode):
        self.op = op  # + - * / || = <> < <= > >= and or
        self.left = left
        self.right = right


class Between(SqlNode):
    """``e between lo and hi`` (optionally negated)."""

    _fields = ("expr", "low", "high", "negated")

    def __init__(self, expr: SqlNode, low: SqlNode, high: SqlNode, negated: bool = False):
        self.expr = expr
        self.low = low
        self.high = high
        self.negated = negated


class InList(SqlNode):
    """``e in (v1, ..., vn)`` (optionally negated)."""

    _fields = ("expr", "items", "negated")

    def __init__(self, expr: SqlNode, items: Sequence[SqlNode], negated: bool = False):
        self.expr = expr
        self.items = list(items)
        self.negated = negated


class InQuery(SqlNode):
    """``e in (select ...)`` (optionally negated)."""

    _fields = ("expr", "query", "negated")

    def __init__(self, expr: SqlNode, query: "Query", negated: bool = False):
        self.expr = expr
        self.query = query
        self.negated = negated


class Exists(SqlNode):
    """``exists (select ...)`` (optionally negated)."""

    _fields = ("query", "negated")

    def __init__(self, query: "Query", negated: bool = False):
        self.query = query
        self.negated = negated


class Like(SqlNode):
    """``e like 'pattern'`` (optionally negated)."""

    _fields = ("expr", "pattern", "negated")

    def __init__(self, expr: SqlNode, pattern: str, negated: bool = False):
        self.expr = expr
        self.pattern = pattern
        self.negated = negated


class Case(SqlNode):
    """``case when c1 then e1 ... [else e] end``."""

    _fields = ("branches", "otherwise")

    def __init__(
        self,
        branches: Sequence[Tuple[SqlNode, SqlNode]],
        otherwise: Optional[SqlNode] = None,
    ):
        self.branches = [tuple(branch) for branch in branches]
        self.otherwise = otherwise

    def children(self) -> List[SqlNode]:
        out: List[SqlNode] = []
        for cond, value in self.branches:
            out.extend([cond, value])
        if self.otherwise is not None:
            out.append(self.otherwise)
        return out


class Aggregate(SqlNode):
    """``count(*) | count(e) | sum(e) | avg(e) | min(e) | max(e)``.

    ``distinct`` covers ``count(distinct e)``.
    """

    _fields = ("func", "arg", "distinct")

    def __init__(self, func: str, arg: Optional[SqlNode], distinct: bool = False):
        self.func = func
        self.arg = arg
        self.distinct = distinct


class Extract(SqlNode):
    """``extract(year|month|day from e)``."""

    _fields = ("part", "expr")

    def __init__(self, part: str, expr: SqlNode):
        self.part = part
        self.expr = expr


class Substring(SqlNode):
    """``substring(e from i [for j])``."""

    _fields = ("expr", "start", "length")

    def __init__(self, expr: SqlNode, start: int, length: Optional[int]):
        self.expr = expr
        self.start = start
        self.length = length


class ScalarQuery(SqlNode):
    """A subquery in scalar position: ``(select max(x) from t)``."""

    _fields = ("query",)

    def __init__(self, query: "Query"):
        self.query = query


# -- query structure -----------------------------------------------------------


class SelectItem(SqlNode):
    """One select-list entry: an expression with an optional alias."""

    _fields = ("expr", "alias")

    def __init__(self, expr: SqlNode, alias: Optional[str] = None):
        self.expr = expr
        self.alias = alias


class TableRef(SqlNode):
    """A FROM item: a base table or view, with an optional alias."""

    _fields = ("name", "alias")

    def __init__(self, name: str, alias: Optional[str] = None):
        self.name = name
        self.alias = alias or name


class SubqueryRef(SqlNode):
    """A FROM item that is a parenthesised subquery with an alias."""

    _fields = ("query", "alias")

    def __init__(self, query: "Query", alias: str):
        self.query = query
        self.alias = alias


class OrderItem(SqlNode):
    """One ORDER BY key: an output column (or select alias) + direction."""

    _fields = ("expr", "descending")

    def __init__(self, expr: SqlNode, descending: bool = False):
        self.expr = expr
        self.descending = descending


class Select(SqlNode):
    """A select-from-where block."""

    _fields = (
        "items",
        "from_items",
        "where",
        "group_by",
        "having",
        "order_by",
        "distinct",
        "limit",
    )

    def __init__(
        self,
        items: Sequence[SelectItem],
        from_items: Sequence[SqlNode],
        where: Optional[SqlNode] = None,
        group_by: Sequence[SqlNode] = (),
        having: Optional[SqlNode] = None,
        order_by: Sequence[OrderItem] = (),
        distinct: bool = False,
        limit: Optional[int] = None,
    ):
        self.items = list(items)
        self.from_items = list(from_items)
        self.where = where
        self.group_by = list(group_by)
        self.having = having
        self.order_by = list(order_by)
        self.distinct = distinct
        self.limit = limit


class SetOp(SqlNode):
    """``q1 UNION [ALL] q2 | q1 INTERSECT q2 | q1 EXCEPT q2``."""

    _fields = ("op", "left", "right", "all")

    def __init__(self, op: str, left: "Query", right: "Query", all: bool = False):
        self.op = op  # "union" | "intersect" | "except"
        self.left = left
        self.right = right
        self.all = all


class Query(SqlNode):
    """A full query: optional WITH bindings around a Select or SetOp.

    Each CTE is a ``(name, query, columns)`` triple; ``columns`` is the
    optional positional column list (``with v (a, b) as (...)``).
    """

    _fields = ("ctes", "body")

    def __init__(self, body: SqlNode, ctes: Sequence[Tuple] = ()):
        self.body = body
        normalised = []
        for cte in ctes:
            if len(cte) == 2:
                name, query = cte
                columns: Tuple[str, ...] = ()
            else:
                name, query, columns = cte
            normalised.append((name, query, tuple(columns)))
        self.ctes = normalised

    def children(self) -> List[SqlNode]:
        out: List[SqlNode] = [query for _, query, _ in self.ctes]
        out.append(self.body)
        return out


# -- statements / scripts --------------------------------------------------------


class CreateView(SqlNode):
    """``create view name [(col, ...)] as query``."""

    _fields = ("name", "columns", "query")

    def __init__(self, name: str, columns: Sequence[str], query: Query):
        self.name = name
        self.columns = list(columns)
        self.query = query


class DropView(SqlNode):
    """``drop view name``."""

    _fields = ("name",)

    def __init__(self, name: str):
        self.name = name


class Script(SqlNode):
    """A ';'-separated sequence of statements (views + one main query)."""

    _fields = ("statements",)

    def __init__(self, statements: Sequence[SqlNode]):
        self.statements = list(statements)

    def main_query(self) -> Query:
        """The (single) top-level SELECT of the script."""
        queries = [s for s in self.statements if isinstance(s, Query)]
        if len(queries) != 1:
            raise ValueError("script must contain exactly one top-level query")
        return queries[0]
