"""SQL → NRAe translation (paper §6).

The translation leans on NRAe's environment exactly the way the paper
advertises:

- **row scoping**: a select block extends the environment with the
  current row's fields (``… ∘e (Env ⊕ In)``), so column references are
  plain environment accesses and *correlated subqueries work with no
  extra machinery* — the inner query simply reads the outer bindings
  from ``Env``;
- **views and with-as**: ``create view v as q`` compiles to
  ``q_stmt ∘e (Env ⊕ [v: q_view])`` (the structure shown in §6), and a
  view reference is just ``Env.v``;
- **grouping**: the group's key is stashed in the environment
  (``∘e (Env ⊕ [__key: In])``) so the partition's selection can compare
  row keys against it without dependent joins.

Row representation: the environment extension record for a row over
``FROM t1 a1, t2 a2`` is ``r1 ⊕ [__t_a1: r1] ⊕ r2 ⊕ [__t_a2: r2]`` —
unqualified columns resolve as ``Env.col``, qualified ones as
``Env.__t_alias.col`` (the prefix keeps aliases from shadowing columns;
TPC-H's globally-unique column names keep unqualified access unambiguous,
see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.data import operators as ops
from repro.data.model import Bag, Record
from repro.nraenv import ast as nra
from repro.nraenv import builders as b
from repro.sql import ast as sql

#: Reserved field names used by the grouping encoding.
GROUP_KEY_FIELD = "__key"
PARTITION_FIELD = "partition"
#: Environment-field prefix for view/CTE bindings, so that a FROM alias
#: named like a view cannot shadow the view itself.
REL_PREFIX = "__rel_"
#: Environment-field prefix for row (table-alias) bindings, so a table
#: or alias named like a column cannot shadow the column.
ALIAS_PREFIX = "__t_"
#: Output-field prefix for ORDER BY keys that are not output columns.
SORT_PREFIX = "__sort_"
#: Constant-environment prefix for ``$name`` query parameters.
PARAM_PREFIX = "$"


class SqlTranslationError(ValueError):
    """Raised when a construct falls outside the supported subset."""


class _Context:
    """Tracks which relation names are environment-bound (views/CTEs)."""

    def __init__(self, env_relations: Optional[Dict[str, Optional[List[str]]]] = None):
        # name → output field names (None when unknown)
        self.env_relations: Dict[str, Optional[List[str]]] = dict(env_relations or {})

    def child(self) -> "_Context":
        return _Context(self.env_relations)


def sql_to_nraenv(script: sql.SqlNode) -> nra.NraeNode:
    """Translate a parsed SQL script (or single query) to an NRAe plan."""
    if isinstance(script, sql.Query):
        plan, _ = _compile_query(script, _Context())
        return plan
    if isinstance(script, sql.Select):
        plan, _ = _compile_select(script, _Context())
        return plan
    if not isinstance(script, sql.Script):
        raise SqlTranslationError("expected a Script/Query, got %r" % (script,))

    context = _Context()
    view_bindings: List[Tuple[str, nra.NraeNode]] = []
    main_plan: Optional[nra.NraeNode] = None
    for statement in script.statements:
        if isinstance(statement, sql.CreateView):
            view_plan, fields = _compile_query(statement.query, context)
            if statement.columns:
                view_plan, fields = _rename_columns(view_plan, fields, statement.columns)
            context.env_relations[statement.name] = fields
            view_bindings.append((statement.name, view_plan))
        elif isinstance(statement, sql.DropView):
            context.env_relations.pop(statement.name, None)
        elif isinstance(statement, sql.Query):
            if main_plan is not None:
                raise SqlTranslationError("script has more than one top-level query")
            main_plan, _ = _compile_query(statement, context)
        else:
            raise SqlTranslationError("unsupported statement %r" % (statement,))
    if main_plan is None:
        raise SqlTranslationError("script has no top-level query")
    # q_stmt ∘e (Env ⊕ [v: q_view]), innermost binding first (§6).
    for name, view_plan in reversed(view_bindings):
        main_plan = b.appenv(
            main_plan, b.concat(b.env(), b.rec_field(REL_PREFIX + name, view_plan))
        )
    return main_plan


def _rename_columns(
    plan: nra.NraeNode, fields: Optional[List[str]], new_names: Sequence[str]
) -> Tuple[nra.NraeNode, List[str]]:
    """Apply a CREATE VIEW column list positionally."""
    if fields is None or len(fields) != len(new_names):
        raise SqlTranslationError(
            "view column list %r does not match query output %r" % (new_names, fields)
        )
    mapping = {new: b.dot(b.id_(), old) for new, old in zip(new_names, fields)}
    return b.chi(b.record(mapping), plan), list(new_names)


def _compile_query(
    query: sql.Query, context: _Context
) -> Tuple[nra.NraeNode, Optional[List[str]]]:
    inner = context.child()
    bindings: List[Tuple[str, nra.NraeNode]] = []
    for name, cte, columns in query.ctes:
        cte_plan, cte_fields = _compile_query(cte, inner)
        if columns:
            cte_plan, cte_fields = _rename_columns(cte_plan, cte_fields, columns)
        inner.env_relations[name] = cte_fields
        bindings.append((name, cte_plan))
    plan, fields = _compile_body(query.body, inner)
    for name, cte_plan in reversed(bindings):
        plan = b.appenv(
            plan, b.concat(b.env(), b.rec_field(REL_PREFIX + name, cte_plan))
        )
    return plan, fields


def _compile_body(
    body: sql.SqlNode, context: _Context
) -> Tuple[nra.NraeNode, Optional[List[str]]]:
    if isinstance(body, sql.Select):
        return _compile_select(body, context)
    if isinstance(body, sql.Query):
        return _compile_query(body, context)
    if isinstance(body, sql.SetOp):
        left, left_fields = _compile_body(body.left, context)
        right, _ = _compile_body(body.right, context)
        if body.op == "union":
            plan = b.union(left, right)
            if not body.all:
                plan = b.distinct(plan)
            return plan, left_fields
        if body.op == "intersect":
            return (
                b.binop(ops.OpBagInter(), b.distinct(left), b.distinct(right)),
                left_fields,
            )
        if body.op == "except":
            return (
                b.binop(ops.OpBagDiff(), b.distinct(left), b.distinct(right)),
                left_fields,
            )
        raise SqlTranslationError("unknown set operation %r" % body.op)
    raise SqlTranslationError("unsupported query body %r" % (body,))


# -- select blocks --------------------------------------------------------------


def _compile_select(
    select: sql.Select, context: _Context
) -> Tuple[nra.NraeNode, Optional[List[str]]]:
    stream, aliases = _compile_from(select.from_items, context)
    if select.where is not None:
        predicate = _compile_expr(select.where, context, grouped=False)
        stream = b.sigma(_with_row_env(predicate), stream)

    grouped = bool(select.group_by) or _items_have_aggregates(select.items) or (
        select.having is not None
    )
    if grouped:
        stream = _compile_grouping(stream, select.group_by, context)
        if select.having is not None:
            having = _compile_expr(select.having, context, grouped=True)
            stream = b.sigma(_with_row_env(having), stream)

    hidden, sort_names = _hidden_sort_items(select, context, grouped)
    plan, fields = _compile_projection(
        select.items, stream, aliases, context, grouped, hidden
    )

    if select.distinct:
        plan = b.distinct(plan)
    if select.order_by:
        keys = [
            (name, item.descending)
            for name, item in zip(sort_names, select.order_by)
        ]
        plan = b.unop(ops.OpSortBy(keys), plan)
        if hidden:
            # strip the hidden sort keys from the output rows
            strip: nra.NraeNode = b.id_()
            for name in hidden:
                strip = b.remove(strip, name)
            plan = b.chi(strip, plan)
    if select.limit is not None:
        plan = b.unop(ops.OpLimit(select.limit), plan)
    return plan, fields


def _hidden_sort_items(
    select: sql.Select, context: _Context, grouped: bool
) -> Tuple[Dict[str, nra.NraeNode], List[str]]:
    """Resolve ORDER BY keys to output field names, adding hidden ones.

    ``select name from emp order by sal`` sorts on a column that is not
    in the output; the projection carries it along under a reserved
    ``__sort_`` name, the sort uses it, and a final map strips it.
    Returns ``(hidden projections, sort field name per ORDER BY item)``.
    """
    if not select.order_by:
        return {}, []
    output_names = set()
    star = False
    for index, item in enumerate(select.items):
        if isinstance(item.expr, sql.Star):
            star = True
            continue
        output_names.add(item.alias or _implied_name(item.expr, index))
    hidden: Dict[str, nra.NraeNode] = {}
    sort_names: List[str] = []
    for item in select.order_by:
        if isinstance(item.expr, sql.Column) and item.expr.table is None and (
            star or item.expr.name in output_names
        ):
            sort_names.append(item.expr.name)
            continue
        if star:
            raise SqlTranslationError(
                "ORDER BY with SELECT * supports plain output columns only"
            )
        hidden_name = SORT_PREFIX + str(len(hidden))
        hidden[hidden_name] = _compile_expr(item.expr, context, grouped)
        sort_names.append(hidden_name)
    return hidden, sort_names


def _compile_from(
    from_items: Sequence[sql.SqlNode], context: _Context
) -> Tuple[nra.NraeNode, List[str]]:
    """The bag of per-row environment-extension records."""
    if not from_items:
        return b.coll(b.const(Record({}))), []
    plans: List[nra.NraeNode] = []
    aliases: List[str] = []
    for item in from_items:
        if isinstance(item, sql.TableRef):
            if item.name in context.env_relations:
                source: nra.NraeNode = b.dot(b.env(), REL_PREFIX + item.name)
            else:
                source = b.table(item.name)
            alias = item.alias
        elif isinstance(item, sql.SubqueryRef):
            source, _ = _compile_query(item.query, context)
            alias = item.alias
        else:
            raise SqlTranslationError("unsupported FROM item %r" % (item,))
        plans.append(
            b.chi(b.concat(b.id_(), b.rec_field(ALIAS_PREFIX + alias, b.id_())), source)
        )
        aliases.append(alias)
    plan = plans[0]
    for extra in plans[1:]:
        plan = b.product(plan, extra)
    return plan, aliases


def _with_row_env(expr_plan: nra.NraeNode) -> nra.NraeNode:
    """``expr ∘e (Env ⊕ In)``: evaluate an expression under the row."""
    return b.appenv(expr_plan, b.concat(b.env(), b.id_()))


def _compile_grouping(
    stream: nra.NraeNode, group_by: Sequence[sql.SqlNode], context: _Context
) -> nra.NraeNode:
    """Group a row stream; output records are ``key ⊕ [partition: rows]``.

    With an empty key list the whole stream is one group.  Uses the
    environment-based group-by of :func:`repro.nraenv.builders.group_by`.
    """
    key_names = [_group_key_name(item) for item in group_by]
    return b.group_by(
        key_names,
        stream,
        partition_field=PARTITION_FIELD,
        key_env_field=GROUP_KEY_FIELD,
    )


def _group_key_name(item: sql.SqlNode) -> str:
    if isinstance(item, sql.Column):
        return item.name
    raise SqlTranslationError(
        "GROUP BY supports column references only, got %r (alias the "
        "expression in a subquery first)" % (item,)
    )


def _items_have_aggregates(items: Sequence[sql.SelectItem]) -> bool:
    def has_aggregate(node: sql.SqlNode) -> bool:
        if isinstance(node, sql.Aggregate):
            return True
        if isinstance(node, (sql.ScalarQuery, sql.Exists, sql.InQuery, sql.Query)):
            return False  # aggregates inside subqueries are theirs
        return any(has_aggregate(child) for child in node.children())

    return any(
        item.expr is not None and has_aggregate(item.expr)
        for item in items
        if not isinstance(item.expr, sql.Star)
    )


def _compile_projection(
    items: Sequence[sql.SelectItem],
    stream: nra.NraeNode,
    aliases: List[str],
    context: _Context,
    grouped: bool,
    hidden: Optional[Dict[str, nra.NraeNode]] = None,
) -> Tuple[nra.NraeNode, Optional[List[str]]]:
    if len(items) == 1 and isinstance(items[0].expr, sql.Star):
        # select *: the row record without the alias bookkeeping fields.
        body: nra.NraeNode = b.id_()
        for alias in aliases:
            body = b.remove(body, ALIAS_PREFIX + alias)
        return b.chi(body, stream), None
    fields: List[str] = []
    exprs: Dict[str, nra.NraeNode] = {}
    for index, item in enumerate(items):
        if isinstance(item.expr, sql.Star):
            raise SqlTranslationError("* must be the only select item")
        name = item.alias or _implied_name(item.expr, index)
        if name in exprs:
            raise SqlTranslationError("duplicate output column %r" % name)
        fields.append(name)
        exprs[name] = _compile_expr(item.expr, context, grouped)
    exprs.update(hidden or {})
    return b.chi(_with_row_env(b.record(exprs)), stream), fields


def _implied_name(expr: sql.SqlNode, index: int) -> str:
    if isinstance(expr, sql.Column):
        return expr.name
    return "col%d" % (index + 1)


# -- expressions -----------------------------------------------------------------

_COMPARISONS = {
    "=": ops.OpEq,
    "<": ops.OpLt,
    "<=": ops.OpLe,
    ">": ops.OpGt,
    ">=": ops.OpGe,
}

_ARITHMETIC = {
    "+": ops.OpAdd,
    "-": ops.OpSub,
    "*": ops.OpMult,
    "/": ops.OpDiv,
}

_DATE_SHIFT = {
    ("+", "day"): ops.OpDatePlusDays,
    ("-", "day"): ops.OpDateMinusDays,
    ("+", "month"): ops.OpDatePlusMonths,
    ("-", "month"): ops.OpDateMinusMonths,
    ("+", "year"): ops.OpDatePlusYears,
    ("-", "year"): ops.OpDateMinusYears,
}


def _compile_expr(
    expr: sql.SqlNode, context: _Context, grouped: bool
) -> nra.NraeNode:
    """Compile an expression to a plan reading the environment only."""
    if isinstance(expr, sql.Literal):
        return b.const(expr.value)
    if isinstance(expr, sql.Param):
        # Parameters live in the constant environment under their
        # "$"-prefixed name ("$" is not an identifier character, so no
        # table can collide); the binding happens at execution time.
        return b.table(PARAM_PREFIX + expr.name)
    if isinstance(expr, sql.Interval):
        raise SqlTranslationError("interval literal outside date arithmetic")
    if isinstance(expr, sql.Column):
        if expr.table is not None:
            return b.dot(b.dot(b.env(), ALIAS_PREFIX + expr.table), expr.name)
        return b.dot(b.env(), expr.name)
    if isinstance(expr, sql.UnaryExpr):
        operand = _compile_expr(expr.operand, context, grouped)
        if expr.op == "-":
            return b.unop(ops.OpNumNeg(), operand)
        if expr.op == "not":
            return b.neg(operand)
        raise SqlTranslationError("unknown unary operator %r" % expr.op)
    if isinstance(expr, sql.BinaryExpr):
        return _compile_binary(expr, context, grouped)
    if isinstance(expr, sql.Between):
        value = _compile_expr(expr.expr, context, grouped)
        low = _compile_expr(expr.low, context, grouped)
        high = _compile_expr(expr.high, context, grouped)
        inside = b.and_(
            b.binop(ops.OpLe(), low, value), b.binop(ops.OpLe(), value, high)
        )
        return b.neg(inside) if expr.negated else inside
    if isinstance(expr, sql.InList):
        value = _compile_expr(expr.expr, context, grouped)
        items = [_compile_expr(item, context, grouped) for item in expr.items]
        if all(isinstance(item, nra.Const) for item in items):
            bag_plan: nra.NraeNode = b.const(Bag([item.value for item in items]))
        else:
            bag_plan = b.coll(items[0])
            for item in items[1:]:
                bag_plan = b.union(bag_plan, b.coll(item))
        membership = b.member(value, bag_plan)
        return b.neg(membership) if expr.negated else membership
    if isinstance(expr, sql.InQuery):
        value = _compile_expr(expr.expr, context, grouped)
        values_plan = _compile_query_values(expr.query, context)
        membership = b.member(value, values_plan)
        return b.neg(membership) if expr.negated else membership
    if isinstance(expr, sql.Exists):
        sub, _ = _compile_query(expr.query, context)
        empty = b.eq(b.count(sub), b.const(0))
        return empty if expr.negated else b.neg(empty)
    if isinstance(expr, sql.Like):
        value = _compile_expr(expr.expr, context, grouped)
        match = b.unop(ops.OpLike(expr.pattern), value)
        return b.neg(match) if expr.negated else match
    if isinstance(expr, sql.Case):
        return _compile_case(expr, context, grouped)
    if isinstance(expr, sql.Aggregate):
        return _compile_aggregate(expr, context, grouped)
    if isinstance(expr, sql.Extract):
        arg = _compile_expr(expr.expr, context, grouped)
        part_ops = {
            "year": ops.OpDateYear,
            "month": ops.OpDateMonth,
            "day": ops.OpDateDay,
        }
        if expr.part not in part_ops:
            raise SqlTranslationError("unsupported extract part %r" % expr.part)
        return b.unop(part_ops[expr.part](), arg)
    if isinstance(expr, sql.Substring):
        arg = _compile_expr(expr.expr, context, grouped)
        return b.unop(ops.OpSubstring(expr.start, expr.length), arg)
    if isinstance(expr, sql.ScalarQuery):
        return b.elem(_compile_query_values(expr.query, context))
    raise SqlTranslationError("unsupported expression %r" % (expr,))


def _compile_binary(
    expr: sql.BinaryExpr, context: _Context, grouped: bool
) -> nra.NraeNode:
    # date ± interval
    if expr.op in ("+", "-") and isinstance(expr.right, sql.Interval):
        op_cls = _DATE_SHIFT[(expr.op, expr.right.unit)]
        left = _compile_expr(expr.left, context, grouped)
        return b.binop(op_cls(), left, b.const(expr.right.amount))
    left = _compile_expr(expr.left, context, grouped)
    right = _compile_expr(expr.right, context, grouped)
    if expr.op == "<>":
        return b.neg(b.eq(left, right))
    if expr.op in _COMPARISONS:
        return b.binop(_COMPARISONS[expr.op](), left, right)
    if expr.op in _ARITHMETIC:
        return b.binop(_ARITHMETIC[expr.op](), left, right)
    if expr.op == "and":
        return b.and_(left, right)
    if expr.op == "or":
        return b.or_(left, right)
    if expr.op == "||":
        return b.binop(ops.OpStrConcat(), left, right)
    raise SqlTranslationError("unknown binary operator %r" % expr.op)


def _compile_case(expr: sql.Case, context: _Context, grouped: bool) -> nra.NraeNode:
    otherwise: nra.NraeNode
    if expr.otherwise is not None:
        otherwise = _compile_expr(expr.otherwise, context, grouped)
    else:
        otherwise = b.const(None)
    plan = otherwise
    for cond, value in reversed(expr.branches):
        plan = b.if_then_else(
            _compile_expr(cond, context, grouped),
            _compile_expr(value, context, grouped),
            plan,
        )
    return plan


def _compile_aggregate(
    expr: sql.Aggregate, context: _Context, grouped: bool
) -> nra.NraeNode:
    if not grouped:
        raise SqlTranslationError(
            "aggregate %r outside a grouped select" % expr.func
        )
    partition = b.dot(b.env(), PARTITION_FIELD)
    if expr.func == "count" and expr.arg is None:
        return b.count(partition)
    if expr.arg is None:
        raise SqlTranslationError("%s(*) is only valid for count" % expr.func)
    arg = _compile_expr(expr.arg, context, grouped=False)
    values = b.chi(_with_row_env(arg), partition)
    if expr.distinct:
        values = b.distinct(values)
    agg_ops = {
        "count": ops.OpCount,
        "sum": ops.OpSum,
        "avg": ops.OpAvg,
        "min": ops.OpMin,
        "max": ops.OpMax,
    }
    return b.unop(agg_ops[expr.func](), values)


def _compile_query_values(query: sql.Query, context: _Context) -> nra.NraeNode:
    """A subquery in value position: the bag of its single output column."""
    plan, fields = _compile_query(query, context)
    if fields is None or len(fields) != 1:
        raise SqlTranslationError(
            "subquery in value position must produce one column, got %r" % (fields,)
        )
    return b.chi(b.dot(b.id_(), fields[0]), plan)
