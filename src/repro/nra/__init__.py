"""NRA: the combinator-based nested relational algebra (paper §3.2).

The syntax is the environment-free fragment of NRAe (shared node
classes); the semantics here is the independent, environment-free
judgment ``⊢ q @ d ⇓n d'`` used by Theorem 2.
"""

from repro.nra.ast import NraNode, check_nra, is_nra
from repro.nra.eval import eval_nra

__all__ = ["NraNode", "check_nra", "eval_nra", "is_nra"]
