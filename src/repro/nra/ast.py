"""The combinator-based NRA (paper Definition 1).

NRA is the fragment of NRAe without ``Env``, ``∘e`` and ``χe``; the node
classes are shared with :mod:`repro.nraenv.ast` (the paper defines NRA
as the set of NRAe plans satisfying the ``NRA(q)`` predicate).  This
module re-exports the fragment's constructors and provides
:func:`check_nra` to assert membership.
"""

from __future__ import annotations

from repro.nraenv.ast import (  # noqa: F401  (re-exports)
    App,
    Binop,
    Const,
    Default,
    DepJoin,
    GetConstant,
    ID,
    Map,
    NRA_NODE_TYPES,
    NraeNode,
    Product,
    Select,
    Unop,
    is_nra,
    project,
    unnest,
)

#: Alias: NRA plans are NRAe nodes restricted by :func:`is_nra`.
NraNode = NraeNode


def check_nra(plan: NraeNode) -> NraeNode:
    """Return ``plan`` if it is a pure-NRA plan, else raise ValueError."""
    if not is_nra(plan):
        raise ValueError("plan uses NRAe environment operators: %r" % (plan,))
    return plan
