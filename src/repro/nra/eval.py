"""Environment-free operational semantics of NRA: ``⊢ q @ d ⇓n d'``.

This is an *independent* implementation of the NRA judgment used by
Theorem 2 (NRAe→NRA correctness): it shares no code with the NRAe
evaluator, so the translation round-trip property tests have a genuinely
separate oracle, the same way the Coq development keeps ``nra_eval`` and
``cnraenv_eval`` distinct.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.data import kernel
from repro.data.model import Bag, DataError
from repro.nraenv import ast
from repro.nraenv.eval import EvalError


def eval_nra(
    plan: ast.NraeNode,
    datum: Any = None,
    constants: Optional[Mapping[str, Any]] = None,
) -> Any:
    """Evaluate a pure-NRA plan against ``datum`` (no environment)."""
    return _eval(plan, datum, constants or {})


def _eval(plan: ast.NraeNode, datum: Any, constants: Mapping[str, Any]) -> Any:
    if isinstance(plan, ast.Const):
        return plan.value
    if isinstance(plan, ast.ID):
        return datum
    if isinstance(plan, ast.GetConstant):
        if plan.cname not in constants:
            raise EvalError("unknown database constant %r" % plan.cname)
        return constants[plan.cname]
    if isinstance(plan, ast.App):
        return _eval(plan.after, _eval(plan.before, datum, constants), constants)
    if isinstance(plan, ast.Unop):
        try:
            return plan.op.apply(_eval(plan.arg, datum, constants))
        except DataError as exc:
            raise EvalError(str(exc)) from exc
    if isinstance(plan, ast.Binop):
        left = _eval(plan.left, datum, constants)
        right = _eval(plan.right, datum, constants)
        try:
            return plan.op.apply(left, right)
        except DataError as exc:
            raise EvalError(str(exc)) from exc
    if isinstance(plan, ast.Map):
        source = _bag(_eval(plan.input, datum, constants), "χ")
        return Bag(_eval(plan.body, item, constants) for item in source)
    if isinstance(plan, ast.Select):
        source = _bag(_eval(plan.input, datum, constants), "σ")
        kept = []
        for item in source:
            verdict = _eval(plan.pred, item, constants)
            if not isinstance(verdict, bool):
                raise EvalError("σ predicate returned non-boolean %r" % (verdict,))
            if verdict:
                kept.append(item)
        return Bag(kept)
    if isinstance(plan, ast.Product):
        left = _bag(_eval(plan.left, datum, constants), "×")
        if not left:
            return Bag([])
        right = _bag(_eval(plan.right, datum, constants), "×")
        return _product(left, right)
    if isinstance(plan, ast.DepJoin):
        source = _bag(_eval(plan.input, datum, constants), "⋈d")
        out = []
        for item in source:
            dependent = _bag(_eval(plan.body, item, constants), "⋈d body")
            out.extend(_product(Bag([item]), dependent).items)
        return Bag(out)
    if isinstance(plan, ast.Default):
        left = _eval(plan.left, datum, constants)
        if isinstance(left, Bag) and not left:
            return _eval(plan.right, datum, constants)
        return left
    if isinstance(plan, (ast.Env, ast.AppEnv, ast.MapEnv)):
        raise EvalError("NRA semantics has no rule for %s" % type(plan).__name__)
    raise EvalError("unknown NRA node %r" % (plan,))


def _bag(value: Any, op: str) -> Bag:
    if not isinstance(value, Bag):
        raise EvalError("%s expects a bag, got %r" % (op, value))
    return value


def _product(left: Bag, right: Bag) -> Bag:
    # Shared kernel loop (this evaluator stays an independent *semantics*
    # oracle for the translations, but bag/record primitives are the
    # kernel's — there is exactly one executable definition of them).
    try:
        return kernel.product(left, right)
    except DataError as exc:
        raise EvalError(str(exc)) from exc
