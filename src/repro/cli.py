"""Command-line interface: compile, inspect, run, and explain queries.

::

    python -m repro compile --language sql --query "select a from t" --show all
    python -m repro compile --language oql --file q.oql --run --data db.json
    python -m repro compile --query "select a from t" --trace out.json --profile
    python -m repro tpch q6 --run
    python -m repro explain --query "select a from t where a > 1"
    python -m repro serve --data db.json --workers 4

``--data`` takes a JSON file mapping table names to rows (arrays of
objects; dates as ``{"$date": "YYYY-MM-DD"}`` — see
:mod:`repro.data.json_io`).  ``--trace`` writes a Chrome
``trace_event`` JSON file (load it at ``chrome://tracing`` or
https://ui.perfetto.dev); ``--profile`` prints the span tree and the
evaluator/runtime metrics; ``explain`` prints the optimizer derivation
— which rules fired, in what order, with the cost trajectory.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Any, List, Optional

from repro.backend.js_gen import generate_javascript
from repro.backend.python_gen import compile_nnrc_to_callable, generate_python
from repro.compiler.pipeline import (
    CompilationResult,
    compile_lnra,
    compile_oql,
    compile_sql,
)
from repro.data import json_io


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="qcert-py: a query compiler built around NRAe (SIGMOD 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_cmd = sub.add_parser("compile", help="compile a query")
    compile_cmd.add_argument(
        "--language",
        choices=("sql", "oql", "lnra"),
        default="sql",
        help="source language (lnra = the lambda algebra, e.g. map(\\x -> x.a)(t))",
    )
    source = compile_cmd.add_mutually_exclusive_group(required=True)
    source.add_argument("--query", help="query text")
    source.add_argument("--file", help="file containing the query")
    compile_cmd.add_argument(
        "--show",
        choices=("plan", "opt", "nnrc", "python", "js", "metrics", "all"),
        default="metrics",
        help="what to print",
    )
    compile_cmd.add_argument("--run", action="store_true", help="execute the query")
    compile_cmd.add_argument("--data", help="JSON file with the database constants")
    _add_obs_flags(compile_cmd)

    tpch_cmd = sub.add_parser("tpch", help="compile/run a bundled TPC-H query")
    tpch_cmd.add_argument("name", help="query name, e.g. q6")
    tpch_cmd.add_argument("--run", action="store_true", help="run on the mini database")
    tpch_cmd.add_argument(
        "--show",
        choices=("plan", "opt", "nnrc", "python", "js", "metrics", "all"),
        default="metrics",
    )
    _add_obs_flags(tpch_cmd)

    explain_cmd = sub.add_parser(
        "explain", help="show the optimizer derivation (rules fired, cost timeline)"
    )
    explain_cmd.add_argument(
        "--language",
        choices=("sql", "oql", "lnra"),
        default="sql",
        help="source language of --query/--file",
    )
    explain_source = explain_cmd.add_mutually_exclusive_group(required=True)
    explain_source.add_argument("--query", help="query text")
    explain_source.add_argument("--file", help="file containing the query")
    explain_source.add_argument("--tpch", help="bundled TPC-H query name, e.g. q6")
    explain_cmd.add_argument(
        "--stage",
        choices=("nraenv", "nnrc", "all"),
        default="all",
        help="which optimizer stage to explain",
    )
    explain_cmd.add_argument(
        "--verbose", action="store_true", help="also list per-rule attempt counts and time"
    )
    explain_cmd.add_argument(
        "--data",
        help="JSON data file; when given (or with --tpch, where it names a "
        "generated scale: micro or small, default micro), explain also runs "
        "the join engine and reports hash joins vs fallbacks to the "
        "reference semantics",
    )
    explain_cmd.add_argument(
        "--analyze",
        action="store_true",
        help="EXPLAIN ANALYZE: execute the optimized plan with per-node "
        "statistics and print the annotated tree plus the cost-model "
        "calibration report (needs data: --data, or --tpch's generated scale)",
    )
    explain_cmd.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format; json (requires --analyze) emits one machine-"
        "readable document: the annotated plan tree, the analyze summary, "
        "the cost-model calibration data, and the join-engine counters",
    )
    _add_obs_flags(explain_cmd)

    serve_cmd = sub.add_parser(
        "serve",
        help="run the query service: one JSON request per stdin line, "
        "one JSON response per stdout line (see DESIGN.md for the protocol); "
        "--http/--tcp serve the same protocol over the network with "
        "multi-process scale-out and admission control",
    )
    serve_cmd.add_argument("--data", help="JSON file of tables to preload into the catalog")
    serve_cmd.add_argument(
        "--workers",
        type=int,
        default=4,
        help="network mode (--http/--tcp): worker *processes*, each with its "
        "own catalog snapshot and plan cache (0 = run in-process on the "
        "leader's thread pool); stdin mode: executor threads",
    )
    serve_cmd.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the wire protocol over HTTP on this port (POST / with a "
        "JSON request body; GET serves /metrics /healthz /stats /telemetry "
        "/slow /workers /trace/<query_id> on the same port; 0 = ephemeral, "
        "announced on stderr)",
    )
    serve_cmd.add_argument(
        "--tcp",
        type=int,
        default=None,
        metavar="PORT",
        help="serve persistent JSON-lines connections on this TCP port "
        "(the stdin protocol verbatim; 0 = ephemeral)",
    )
    serve_cmd.add_argument(
        "--host", default="127.0.0.1", help="bind address for --http/--tcp"
    )
    serve_cmd.add_argument(
        "--mp-start",
        choices=("spawn", "fork", "forkserver"),
        default="spawn",
        help="multiprocessing start method for worker processes",
    )
    serve_cmd.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="graceful-shutdown budget for in-flight requests (SIGTERM/"
        "SIGINT/shutdown op stop admission, then wait up to this long)",
    )
    serve_cmd.add_argument(
        "--queue-depth", type=int, default=16, help="bounded admission queue depth"
    )
    serve_cmd.add_argument(
        "--cache-size", type=int, default=128, help="plan cache capacity (LRU)"
    )
    serve_cmd.add_argument(
        "--timeout", type=float, default=30.0, help="default per-query timeout (seconds)"
    )
    serve_cmd.add_argument(
        "--slow-query",
        type=float,
        default=None,
        metavar="SECONDS",
        help="log queries whose execute phase takes at least this long "
        "(kept in the telemetry ring; see the 'telemetry' op)",
    )
    serve_cmd.add_argument(
        "--telemetry-capacity",
        type=int,
        default=256,
        help="per-query telemetry ring-buffer capacity",
    )
    serve_cmd.add_argument(
        "--obs-port",
        type=int,
        default=None,
        metavar="PORT",
        help="start the HTTP observability sidecar on this port "
        "(/metrics /healthz /stats /telemetry /slow; 0 = ephemeral). "
        "The bound address is announced on stderr (stdout is the wire)",
    )
    serve_cmd.add_argument(
        "--query-log",
        metavar="PATH",
        help="append one JSON-lines audit event per query to this file "
        "(size-bounded rotation; see repro.obs.log)",
    )
    serve_cmd.add_argument(
        "--query-log-max-bytes",
        type=int,
        default=10_000_000,
        metavar="BYTES",
        help="rotate the query log when it exceeds this size",
    )
    serve_cmd.add_argument(
        "--trace-sample",
        type=float,
        default=0.05,
        metavar="RATE",
        help="tail-sampling head rate in [0, 1] for per-query traces "
        "(slow and errored queries are always kept; a negative rate "
        "disables per-query tracing entirely)",
    )
    serve_cmd.add_argument(
        "--heartbeat-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="worker resource-heartbeat cadence in network mode "
        "(feeds /workers and the per-worker gauges on /metrics; "
        "0 disables heartbeats)",
    )

    trace_cmd = sub.add_parser(
        "trace",
        help="fetch one kept merged trace from a running service "
        "(GET /trace/<query_id> on a --http port or the obs sidecar) "
        "and render it as a per-process span tree",
    )
    trace_cmd.add_argument("query_id", help="the query id to look up (16 hex chars)")
    trace_cmd.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="base URL of the service's --http port or --obs-port sidecar",
    )
    trace_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the raw trace fragment JSON (per-process span trees "
        "plus chrome events) instead of the rendered tree",
    )
    return parser


def _add_obs_flags(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace_event JSON file of the compilation (and --run)",
    )
    cmd.add_argument(
        "--profile",
        action="store_true",
        help="print the span tree and collected metrics after the command",
    )


def _load_query(args: argparse.Namespace) -> str:
    if args.query is not None:
        return args.query
    with open(args.file) as handle:
        return handle.read()


class _DataFileError(Exception):
    """A --data file problem, reported as one actionable line (exit 2)."""


def _load_data(path: Optional[str]) -> dict:
    if path is None:
        return {}
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise _DataFileError(
            "cannot read --data file %r: %s" % (path, exc.strerror or exc)
        )
    from repro.data.model import DataError, Record

    try:
        value = json_io.loads(text)
    except (ValueError, DataError) as exc:
        raise _DataFileError("malformed JSON in --data file %r: %s" % (path, exc))
    if not isinstance(value, Record):
        raise _DataFileError(
            "--data file %r must be a JSON object mapping table names to row arrays"
            % (path,)
        )
    return {name: value[name] for name in value.domain()}


def _print_result(result: CompilationResult, show: str, out) -> None:
    plan = result.output("to_nraenv")
    optimized = result.output("nraenv_opt")
    nnrc = result.final
    if show in ("plan", "all"):
        print("NRAe:", plan, file=out)
    if show in ("opt", "all"):
        print("NRAe optimized:", optimized, file=out)
    if show in ("nnrc", "all"):
        print("NNRC:", nnrc, file=out)
    if show in ("python", "all"):
        source, _ = generate_python(nnrc)
        print(source, file=out)
    if show in ("js", "all"):
        print(generate_javascript(nnrc), file=out)
    if show in ("metrics", "all"):
        print(
            "sizes: NRAe %d → optimized %d → NNRC %d"
            % (plan.size(), optimized.size(), nnrc.size()),
            file=out,
        )
        print(
            "depths: NRAe %d → optimized %d" % (plan.depth(), optimized.depth()),
            file=out,
        )
        print(
            "times: " + "  ".join("%s %.4fs" % (k, v) for k, v in result.timings().items()),
            file=out,
        )


def _run_query(result: CompilationResult, constants: dict, out) -> None:
    query = compile_nnrc_to_callable(result.final)
    value = query(constants)
    print(json_io.dumps(value, indent=2), file=out)


#: (stage name, human label) for the optimizer stages ``explain`` covers.
_EXPLAIN_STAGES = {
    "nraenv": [("nraenv_opt", "NRAe optimizer")],
    "nnrc": [("nnrc_opt", "NNRC optimizer")],
    "all": [("nraenv_opt", "NRAe optimizer"), ("nnrc_opt", "NNRC optimizer")],
}


def _print_explain(result: CompilationResult, stage_choice: str, verbose: bool, out) -> None:
    """Render the provenance logs: the optimizer derivation per stage."""
    for stage_name, label in _EXPLAIN_STAGES[stage_choice]:
        try:
            opt = result.optimize_result(stage_name)
        except KeyError:
            continue
        if opt is None or opt.provenance is None:
            continue
        prov = opt.provenance
        print("== %s (stage %s) ==" % (label, stage_name), file=out)
        print(
            "cost %d → %d in %d passes (%s)"
            % (opt.initial_cost, opt.final_cost, opt.passes, prov.termination),
            file=out,
        )
        print("cost trajectory: " + " → ".join(str(c) for c in prov.costs), file=out)
        if prov.events:
            print("derivation (%d rewrites):" % len(prov.events), file=out)
            for index, event in enumerate(prov.events, 1):
                print(
                    "  %3d. pass %-2d %-40s size %d → %d"
                    % (index, event.pass_index, event.rule, event.size_before, event.size_after),
                    file=out,
                )
            print("rule totals:", file=out)
            for name, count in sorted(prov.rule_counts().items(), key=lambda kv: (-kv[1], kv[0])):
                print("  %4dx %s" % (count, name), file=out)
        else:
            print("derivation: no rule fired (plan already normal)", file=out)
        if verbose and prov.rule_attempts:
            print("rule attempts (time):", file=out)
            ranked = sorted(prov.rule_seconds.items(), key=lambda kv: -kv[1])
            for name, seconds in ranked[:15]:
                print(
                    "  %-40s %8d attempts  %8.3f ms"
                    % (name, prov.rule_attempts.get(name, 0), seconds * 1e3),
                    file=out,
                )
        print("", file=out)


def _explain_constants(args: argparse.Namespace) -> Optional[dict]:
    """The database ``explain`` should execute against, or None.

    With ``--tpch``, ``--data`` names a generated scale (``micro``, the
    default, or ``small``); otherwise it is a JSON file path.
    """
    if args.tpch is not None:
        from repro.tpch.datagen import MICRO, SMALL, generate

        scales = {"micro": MICRO, "small": SMALL}
        name = args.data or "micro"
        if name not in scales:
            raise _DataFileError(
                "--data with --tpch names a generated scale: micro or small "
                "(got %r)" % (name,)
            )
        return generate(scales[name], seed=7)
    if args.data:
        return _load_data(args.data)
    return None


def _print_analyze(result: CompilationResult, constants: dict, out) -> Optional[int]:
    """EXPLAIN ANALYZE: run the optimized plan instrumented; print the tree.

    Returns the result cardinality (so the join-engine section can skip
    re-executing), or None when execution failed.
    """
    from repro.data.model import Bag, Record
    from repro.nraenv.eval import EvalError
    from repro.nraenv.exec import eval_fast
    from repro.obs.analyze import analyze_execution, calibration_report, render_analyze

    plan = result.output("nraenv_opt")
    print("== EXPLAIN ANALYZE (optimized NRAe, join engine) ==", file=out)
    try:
        with analyze_execution() as collector:
            value = eval_fast(plan, Record({}), None, constants)
    except EvalError as exc:
        print("execution failed: %s" % exc, file=out)
        print("", file=out)
        return None
    print(render_analyze(plan, collector), file=out, end="")
    print("", file=out)
    print(calibration_report(plan, collector), file=out, end="")
    print("", file=out)
    return len(value) if isinstance(value, Bag) else 0


def _print_engine(
    result: CompilationResult, constants: Optional[dict], out, rows: Optional[int] = None
) -> None:
    """Report the join engine's decisions on the optimized plan.

    The engine's shape analysis is data-dependent, so the report is only
    produced when data is available: a generated TPC-H scale for
    ``--tpch``, or a ``--data`` file.  Counters come from the active
    :mod:`repro.obs` session (``engine.join`` / ``engine.fallback.*`` —
    the formerly *silent* fallbacks to the reference semantics).  When
    ``rows`` is given the plan already ran (EXPLAIN ANALYZE) and is not
    re-executed — the counters reflect that single run.
    """
    from repro.obs.metrics import get_metrics

    print("== Join engine ==", file=out)
    if constants is None:
        print(
            "not exercised (pass --data, or use --tpch for the micro database)",
            file=out,
        )
        print("", file=out)
        return
    if rows is None:
        from repro.data.model import Record
        from repro.nraenv.eval import EvalError
        from repro.nraenv.exec import eval_fast

        plan = result.output("nraenv_opt")
        try:
            value = eval_fast(plan, Record({}), None, constants)
        except EvalError as exc:
            print("execution failed: %s" % exc, file=out)
        else:
            print("executed optimized NRAe plan: %d rows" % len(value), file=out)
    else:
        print("executed optimized NRAe plan: %d rows" % rows, file=out)
    counters = get_metrics().snapshot()["counters"]
    print("hash joins executed: %d" % counters.get("engine.join", 0), file=out)
    print(
        "physical group-bys executed: %d" % counters.get("engine.group_by", 0),
        file=out,
    )
    fused = counters.get("engine.columnar", 0) + counters.get(
        "engine.columnar_filter", 0
    )
    print("fused columnar passes: %d" % fused, file=out)
    hoisted = counters.get("engine.hoisted_in", 0)
    if hoisted:
        print("uncorrelated IN subqueries hoisted: %d" % hoisted, file=out)
    prefix = "engine.fallback."
    fallbacks = sorted(
        (name[len(prefix):], count)
        for name, count in counters.items()
        if name.startswith(prefix)
    )
    if fallbacks:
        print("fallbacks to reference semantics:", file=out)
        for reason, count in fallbacks:
            print("  %4dx %s" % (count, reason), file=out)
    else:
        print("fallbacks to reference semantics: none", file=out)
    shed = counters.get("service.shed", 0)
    if shed:
        print("load-shed requests (service.shed): %d" % shed, file=out)
    print("", file=out)


def _engine_counters() -> dict:
    """The join-engine counters of the active obs session, as JSON."""
    from repro.obs.metrics import get_metrics

    counters = get_metrics().snapshot()["counters"]
    prefix = "engine.fallback."
    return {
        "joins": counters.get("engine.join", 0),
        "group_bys": counters.get("engine.group_by", 0),
        "columnar": counters.get("engine.columnar", 0)
        + counters.get("engine.columnar_filter", 0),
        "hoisted_in": counters.get("engine.hoisted_in", 0),
        "shed": counters.get("service.shed", 0),
        "fallbacks": {
            name[len(prefix):]: count
            for name, count in counters.items()
            if name.startswith(prefix)
        },
    }


def _explain_json(result: CompilationResult, constants: dict, language: str, text: str, out) -> int:
    """``explain --analyze --format json``: one machine-readable document.

    Executes the optimized plan once under the analyze collector and
    emits the annotated plan tree (:func:`repro.obs.analyze.analyze_json`),
    the summary digest, the cost-model calibration data, and the
    join-engine counters for that run.
    """
    import json as _json

    from repro.data.model import Bag, Record
    from repro.nraenv.eval import EvalError
    from repro.nraenv.exec import eval_fast
    from repro.obs.analyze import (
        analysis_summary,
        analyze_execution,
        analyze_json,
        calibration_data,
    )

    plan = result.output("nraenv_opt")
    doc: dict = {"language": language, "query": text}
    try:
        with analyze_execution() as collector:
            value = eval_fast(plan, Record({}), None, constants)
    except EvalError as exc:
        doc["ok"] = False
        doc["error"] = str(exc)
        print(_json.dumps(doc, indent=2), file=out)
        return 1
    doc["ok"] = True
    doc["rows"] = len(value) if isinstance(value, Bag) else 0
    doc["analyze"] = analysis_summary(collector)
    doc["plan"] = analyze_json(plan, collector)
    doc["calibration"] = calibration_data(plan, collector)
    doc["engine"] = _engine_counters()
    print(_json.dumps(doc, indent=2), file=out)
    return 0


def _tpch_query(name: str, out) -> Optional[str]:
    from repro.tpch.queries import QUERIES

    if name not in QUERIES:
        print("unknown TPC-H query %r (have %s)" % (name, sorted(QUERIES)), file=out)
        return None
    return QUERIES[name]


class _GracefulExit(Exception):
    """A termination signal arrived; carries the drain reason."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _serve_stdin(
    args: argparse.Namespace, service: Any, obs_server: Any, out: Any
) -> int:
    """The stdin/stdout JSON-lines loop with graceful signal handling.

    SIGTERM and SIGINT go through the same shutdown path as the network
    mode and the wire ``shutdown`` op: stop reading, drain the executor
    (in-flight queries finish), flush the final ``shutdown`` audit event,
    close the query log and the obs sidecar.
    """
    import signal
    import threading

    installed = []
    if threading.current_thread() is threading.main_thread():

        def _on_signal(signum: int, frame: Any) -> None:
            raise _GracefulExit(
                "sigterm" if signum == getattr(signal, "SIGTERM", None) else "sigint"
            )

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                installed.append((signum, signal.signal(signum, _on_signal)))
            except (ValueError, OSError):  # pragma: no cover - exotic platform
                pass
    try:
        code = service.serve(sys.stdin, out)
    except _GracefulExit as exc:
        service.drain(reason=exc.reason, wait=True)
        code = 0
    except KeyboardInterrupt:  # pragma: no cover - ^C without our handler
        service.drain(reason="sigint", wait=False)
        code = 0
    finally:
        for signum, previous in installed:
            signal.signal(signum, previous)
        # Idempotent: only closes the sidecar if serve() already drained.
        service.drain(reason="shutdown", wait=False, obs_server=obs_server)
    return code


def _cmd_trace(args: argparse.Namespace, out: Any) -> int:
    """``repro trace <query_id>``: fetch and render a merged trace."""
    import json as _json
    import urllib.error
    import urllib.request

    from repro.obs.export import render_trace_tree

    url = args.url.rstrip("/") + "/trace/" + args.query_id
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            body = response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        detail = ""
        try:
            detail = _json.loads(exc.read().decode("utf-8")).get("error", "")
        except Exception:  # noqa: BLE001 - non-JSON error body
            pass
        print("repro: %s" % (detail or exc), file=out)
        return 1
    except (urllib.error.URLError, OSError) as exc:
        print("repro: cannot reach %s: %s" % (url, exc), file=out)
        return 1
    try:
        fragment = _json.loads(body)
    except ValueError as exc:
        print("repro: malformed trace document from %s: %s" % (url, exc), file=out)
        return 1
    if args.json:
        print(_json.dumps(fragment, indent=1), file=out)
    else:
        print(render_trace_tree(fragment), file=out, end="")
    return 0


def _serve_net(args: argparse.Namespace, service: Any, obs_server: Any) -> int:
    """The asyncio network front end behind ``serve --http/--tcp``."""
    import asyncio

    from repro.service import ServeNetServer, WorkerPool, catalog_snapshot

    pool = None
    if args.workers > 0:
        print(
            "repro: starting %d worker process%s (%s)"
            % (args.workers, "" if args.workers == 1 else "es", args.mp_start),
            file=sys.stderr,
        )
        sys.stderr.flush()
        pool = WorkerPool(
            args.workers,
            lambda: catalog_snapshot(service),
            mp_start=args.mp_start,
            options={
                "cache_capacity": args.cache_size,
                "default_timeout": args.timeout,
            },
            metrics=service.metrics,
        ).start()
    server = ServeNetServer(
        service,
        pool=pool,
        http_port=args.http,
        tcp_port=args.tcp,
        host=args.host,
        queue_depth=args.queue_depth,
        default_timeout=args.timeout,
        drain_timeout=args.drain_timeout,
        obs_server=obs_server,
        heartbeat_interval=getattr(args, "heartbeat_interval", 2.0),
    )

    async def _run() -> int:
        await server.start()
        # Announced on stderr in a stable format: the concurrent-load
        # benchmark and the CI smoke step parse these lines.
        endpoints = server.endpoints()
        if "http" in endpoints:
            print(
                "repro: http endpoint on http://%s:%d "
                "(POST / with a JSON request; GET /metrics /healthz /stats "
                "/telemetry /slow /workers /trace/<query_id>)" % endpoints["http"],
                file=sys.stderr,
            )
        if "tcp" in endpoints:
            print(
                "repro: tcp endpoint on %s:%d (JSON lines)" % endpoints["tcp"],
                file=sys.stderr,
            )
        sys.stderr.flush()
        return await server.run()

    return asyncio.run(_run())


def main(argv: Optional[List[str]] = None, out: Any = None) -> int:
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)

    # explain always needs the provenance machinery; compile/tpch only
    # pay for it when --trace/--profile asks.
    observing = args.command == "explain" or getattr(args, "trace", None) or getattr(
        args, "profile", False
    )
    if observing:
        from repro.obs import observe

        session_cm = observe()
    else:
        session_cm = contextlib.nullcontext(None)

    with session_cm as session:
        if args.command == "compile":
            text = _load_query(args)
            compilers = {"sql": compile_sql, "oql": compile_oql, "lnra": compile_lnra}
            result = compilers[args.language](text)
            _print_result(result, args.show, out)
            if args.run:
                try:
                    constants = _load_data(args.data)
                except _DataFileError as exc:
                    print("repro: %s" % exc, file=out)
                    return 2
                _run_query(result, constants, out)
            code = 0

        elif args.command == "serve":
            from repro.obs.log import QueryLog
            from repro.service import CatalogError, ObsHttpServer, QueryService

            net_mode = args.http is not None or args.tcp is not None
            # In network mode with worker processes the leader's thread
            # pool only runs control ops and obs requests — keep it small.
            # Everywhere else `--workers` sizes the executor itself.
            if net_mode and args.workers > 0:
                service_workers = 2
            else:
                service_workers = args.workers if args.workers > 0 else 4
            query_log = None
            if args.query_log:
                query_log = QueryLog(args.query_log, max_bytes=args.query_log_max_bytes)
            service = QueryService(
                cache_capacity=args.cache_size,
                workers=service_workers,
                queue_depth=args.queue_depth,
                default_timeout=args.timeout,
                telemetry_capacity=args.telemetry_capacity,
                slow_query_seconds=args.slow_query,
                trace_sample_rate=None if args.trace_sample < 0 else args.trace_sample,
                query_log=query_log,
            )
            if args.data:
                try:
                    service.load_json(args.data)
                except CatalogError as exc:
                    print("repro: %s" % exc, file=out)
                    return 2
            obs_server = None
            if args.obs_port is not None:
                # Announcements go to stderr: stdout is the JSON-lines wire.
                obs_server = ObsHttpServer(service, port=args.obs_port).start()
                print(
                    "repro: obs endpoint on http://%s:%d "
                    "(/metrics /healthz /stats /telemetry /slow /workers "
                    "/trace/<query_id>)" % (obs_server.host, obs_server.port),
                    file=sys.stderr,
                )
                sys.stderr.flush()
            if net_mode:
                code = _serve_net(args, service, obs_server)
            else:
                code = _serve_stdin(args, service, obs_server, out)

        elif args.command == "trace":
            code = _cmd_trace(args, out)

        elif args.command == "tpch":
            from repro.tpch.datagen import MICRO, generate

            query_text = _tpch_query(args.name, out)
            if query_text is None:
                return 2
            result = compile_sql(query_text)
            _print_result(result, args.show, out)
            if args.run:
                _run_query(result, generate(MICRO, seed=7), out)
            code = 0

        elif args.command == "explain":
            if args.format == "json" and not args.analyze:
                print("repro: --format json requires --analyze", file=out)
                return 2
            if args.tpch is not None:
                text = _tpch_query(args.tpch, out)
                if text is None:
                    return 2
                language = "sql"
                result = compile_sql(text)
            else:
                text = _load_query(args)
                language = args.language
                compilers = {"sql": compile_sql, "oql": compile_oql, "lnra": compile_lnra}
                result = compilers[language](text)
            try:
                constants = _explain_constants(args)
            except _DataFileError as exc:
                print("repro: %s" % exc, file=out)
                return 2
            if args.analyze and constants is None:
                print(
                    "repro: --analyze needs data to execute against "
                    "(pass --data, or use --tpch for a generated scale)",
                    file=out,
                )
                return 2
            if args.format == "json":
                code = _explain_json(result, constants, language, text, out)
            else:
                _print_explain(result, args.stage, args.verbose, out)
                rows = None
                if args.analyze:
                    rows = _print_analyze(result, constants, out)
                _print_engine(result, constants, out, rows=rows)
                code = 0

        else:  # pragma: no cover - argparse enforces subcommands
            return 2

    if observing:
        from repro.obs.export import text_report, write_chrome_trace

        if args.trace:
            try:
                write_chrome_trace(args.trace, session.tracer, session.metrics)
            except OSError as exc:
                print("cannot write trace file %s: %s" % (args.trace, exc), file=out)
                return 1
            print("trace written to %s" % args.trace, file=out)
        if args.profile:
            print(text_report(session.tracer, session.metrics), file=out, end="")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
