"""Command-line interface: compile, inspect, and run queries.

::

    python -m repro compile --language sql --query "select a from t" --show all
    python -m repro compile --language oql --file q.oql --run --data db.json
    python -m repro tpch q6 --run

``--data`` takes a JSON file mapping table names to rows (arrays of
objects; dates as ``{"$date": "YYYY-MM-DD"}`` — see
:mod:`repro.data.json_io`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List, Optional

from repro.backend.js_gen import generate_javascript
from repro.backend.python_gen import compile_nnrc_to_callable, generate_python
from repro.compiler.pipeline import (
    CompilationResult,
    compile_lnra,
    compile_oql,
    compile_sql,
)
from repro.data import json_io


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="qcert-py: a query compiler built around NRAe (SIGMOD 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_cmd = sub.add_parser("compile", help="compile a query")
    compile_cmd.add_argument(
        "--language",
        choices=("sql", "oql", "lnra"),
        default="sql",
        help="source language (lnra = the lambda algebra, e.g. map(\\x -> x.a)(t))",
    )
    source = compile_cmd.add_mutually_exclusive_group(required=True)
    source.add_argument("--query", help="query text")
    source.add_argument("--file", help="file containing the query")
    compile_cmd.add_argument(
        "--show",
        choices=("plan", "opt", "nnrc", "python", "js", "metrics", "all"),
        default="metrics",
        help="what to print",
    )
    compile_cmd.add_argument("--run", action="store_true", help="execute the query")
    compile_cmd.add_argument("--data", help="JSON file with the database constants")

    tpch_cmd = sub.add_parser("tpch", help="compile/run a bundled TPC-H query")
    tpch_cmd.add_argument("name", help="query name, e.g. q6")
    tpch_cmd.add_argument("--run", action="store_true", help="run on the mini database")
    tpch_cmd.add_argument(
        "--show",
        choices=("plan", "opt", "nnrc", "python", "js", "metrics", "all"),
        default="metrics",
    )
    return parser


def _load_query(args: argparse.Namespace) -> str:
    if args.query is not None:
        return args.query
    with open(args.file) as handle:
        return handle.read()


def _load_data(path: Optional[str]) -> dict:
    if path is None:
        return {}
    with open(path) as handle:
        value = json_io.loads(handle.read())
    from repro.data.model import Record

    if not isinstance(value, Record):
        raise SystemExit("--data must be a JSON object mapping tables to rows")
    return {name: value[name] for name in value.domain()}


def _print_result(result: CompilationResult, show: str, out) -> None:
    plan = result.output("to_nraenv")
    optimized = result.output("nraenv_opt")
    nnrc = result.final
    if show in ("plan", "all"):
        print("NRAe:", plan, file=out)
    if show in ("opt", "all"):
        print("NRAe optimized:", optimized, file=out)
    if show in ("nnrc", "all"):
        print("NNRC:", nnrc, file=out)
    if show in ("python", "all"):
        source, _ = generate_python(nnrc)
        print(source, file=out)
    if show in ("js", "all"):
        print(generate_javascript(nnrc), file=out)
    if show in ("metrics", "all"):
        print(
            "sizes: NRAe %d → optimized %d → NNRC %d"
            % (plan.size(), optimized.size(), nnrc.size()),
            file=out,
        )
        print(
            "depths: NRAe %d → optimized %d" % (plan.depth(), optimized.depth()),
            file=out,
        )
        print(
            "times: " + "  ".join("%s %.4fs" % (k, v) for k, v in result.timings().items()),
            file=out,
        )


def _run_query(result: CompilationResult, constants: dict, out) -> None:
    query = compile_nnrc_to_callable(result.final)
    value = query(constants)
    print(json_io.dumps(value, indent=2), file=out)


def main(argv: Optional[List[str]] = None, out: Any = None) -> int:
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)

    if args.command == "compile":
        text = _load_query(args)
        compilers = {"sql": compile_sql, "oql": compile_oql, "lnra": compile_lnra}
        result = compilers[args.language](text)
        _print_result(result, args.show, out)
        if args.run:
            _run_query(result, _load_data(args.data), out)
        return 0

    if args.command == "tpch":
        from repro.tpch.datagen import MICRO, generate
        from repro.tpch.queries import QUERIES

        if args.name not in QUERIES:
            print("unknown TPC-H query %r (have %s)" % (args.name, sorted(QUERIES)), file=out)
            return 2
        result = compile_sql(QUERIES[args.name])
        _print_result(result, args.show, out)
        if args.run:
            _run_query(result, generate(MICRO, seed=7), out)
        return 0

    return 2  # pragma: no cover - argparse enforces subcommands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
