"""Type inference for NNRC expressions (paper §8).

The calculus-side counterpart of :mod:`repro.typing.nraenv_typing`,
with a variable-type environment instead of (env, input) types.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.data.types import QType, TBag, TBool, TBottom, TTop, is_subtype, join
from repro.nnrc import ast
from repro.typing.op_typing import TypingError, type_binop, type_unop


def type_nnrc(
    expr: ast.NnrcNode,
    var_types: Optional[Mapping[str, QType]] = None,
    constant_types: Optional[Mapping[str, QType]] = None,
) -> QType:
    """Infer the type of ``expr`` under ``var_types``."""
    return _infer(expr, dict(var_types or {}), constant_types or {})


def _infer(
    expr: ast.NnrcNode, vars: Dict[str, QType], constants: Mapping[str, QType]
) -> QType:
    if isinstance(expr, ast.Var):
        if expr.name not in vars:
            raise TypingError("unbound variable %r" % expr.name)
        return vars[expr.name]
    if isinstance(expr, ast.Const):
        from repro.data.types import type_of_value

        return type_of_value(expr.value)
    if isinstance(expr, ast.GetConstant):
        if expr.cname not in constants:
            raise TypingError("unknown database constant %r" % expr.cname)
        return constants[expr.cname]
    if isinstance(expr, ast.Unop):
        return type_unop(expr.op, _infer(expr.arg, vars, constants))
    if isinstance(expr, ast.Binop):
        return type_binop(
            expr.op,
            _infer(expr.left, vars, constants),
            _infer(expr.right, vars, constants),
        )
    if isinstance(expr, ast.Let):
        defn = _infer(expr.defn, vars, constants)
        inner = dict(vars)
        inner[expr.var] = defn
        return _infer(expr.body, inner, constants)
    if isinstance(expr, ast.For):
        source = _infer(expr.source, vars, constants)
        if isinstance(source, TBottom):
            element: QType = TBottom()
        elif isinstance(source, TBag):
            element = source.element
        else:
            raise TypingError("comprehension source must be a bag, got %r" % (source,))
        inner = dict(vars)
        inner[expr.var] = element
        return TBag(_infer(expr.body, inner, constants))
    if isinstance(expr, ast.If):
        cond = _infer(expr.cond, vars, constants)
        if not is_subtype(cond, TBool()):
            raise TypingError("if condition must be boolean, got %r" % (cond,))
        left = _infer(expr.then, vars, constants)
        right = _infer(expr.otherwise, vars, constants)
        result = join(left, right)
        if isinstance(result, TTop) and not (
            isinstance(left, TTop) or isinstance(right, TTop)
        ):
            raise TypingError(
                "if branches have incompatible types: %r vs %r" % (left, right)
            )
        return result
    raise TypingError("unknown NNRC node %r" % (expr,))
