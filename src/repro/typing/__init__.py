"""Type checking for the intermediate languages (paper §4.1, §8)."""

from repro.typing.nnrc_typing import type_nnrc
from repro.typing.nraenv_typing import type_nraenv
from repro.typing.op_typing import TypingError

__all__ = ["TypingError", "type_nnrc", "type_nraenv"]
