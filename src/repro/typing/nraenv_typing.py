"""Type inference for NRAe plans (paper §4.1, §8).

Implements the judgment behind Definition 4 (typed rewrites): given
types for the environment, the input, and the database constants, infer
the plan's output type or fail with :class:`TypingError`.  Used by the
typed-rewrite property tests: a rewrite ``q1 ⇒ q2`` must map well-typed
``q1`` to well-typed ``q2`` *at a subtype of the same type*, and agree
on all values of those types.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.data.types import QType, TBag, TBool, TBottom, TRecord, TTop, is_subtype
from repro.nraenv import ast
from repro.typing.op_typing import TypingError, type_binop, type_unop


def type_nraenv(
    plan: ast.NraeNode,
    env_type: QType,
    input_type: QType,
    constant_types: Optional[Mapping[str, QType]] = None,
) -> QType:
    """Infer the output type of ``plan`` (raises TypingError if ill-typed)."""
    constant_types = constant_types or {}
    return _infer(plan, env_type, input_type, constant_types)


def _element(t: QType, what: str) -> QType:
    if isinstance(t, TBottom):
        return TBottom()
    if not isinstance(t, TBag):
        raise TypingError("%s expects a bag, got %r" % (what, t))
    return t.element


def _infer(
    plan: ast.NraeNode,
    env_type: QType,
    input_type: QType,
    constants: Mapping[str, QType],
) -> QType:
    if isinstance(plan, ast.Const):
        from repro.data.types import type_of_value

        return type_of_value(plan.value)
    if isinstance(plan, ast.ID):
        return input_type
    if isinstance(plan, ast.Env):
        return env_type
    if isinstance(plan, ast.GetConstant):
        if plan.cname not in constants:
            raise TypingError("unknown database constant %r" % plan.cname)
        return constants[plan.cname]
    if isinstance(plan, ast.App):
        middle = _infer(plan.before, env_type, input_type, constants)
        return _infer(plan.after, env_type, middle, constants)
    if isinstance(plan, ast.AppEnv):
        new_env = _infer(plan.before, env_type, input_type, constants)
        return _infer(plan.after, new_env, input_type, constants)
    if isinstance(plan, ast.Unop):
        return type_unop(plan.op, _infer(plan.arg, env_type, input_type, constants))
    if isinstance(plan, ast.Binop):
        left = _infer(plan.left, env_type, input_type, constants)
        right = _infer(plan.right, env_type, input_type, constants)
        return type_binop(plan.op, left, right)
    if isinstance(plan, ast.Map):
        element = _element(
            _infer(plan.input, env_type, input_type, constants), "χ"
        )
        return TBag(_infer(plan.body, env_type, element, constants))
    if isinstance(plan, ast.Select):
        source = _infer(plan.input, env_type, input_type, constants)
        element = _element(source, "σ")
        pred = _infer(plan.pred, env_type, element, constants)
        if not is_subtype(pred, TBool()):
            raise TypingError("σ predicate must be boolean, got %r" % (pred,))
        return source
    if isinstance(plan, (ast.Product, ast.DepJoin)):
        if isinstance(plan, ast.Product):
            left_el = _element(
                _infer(plan.left, env_type, input_type, constants), "×"
            )
            right_el = _element(
                _infer(plan.right, env_type, input_type, constants), "×"
            )
        else:
            left_el = _element(
                _infer(plan.input, env_type, input_type, constants), "⋈d"
            )
            right_el = _element(
                _infer(plan.body, env_type, left_el, constants), "⋈d body"
            )
        fields = {}
        for element in (left_el, right_el):
            if isinstance(element, TBottom):
                continue
            if not isinstance(element, TRecord):
                raise TypingError("product elements must be records, got %r" % (element,))
            fields.update(element.field_map())
        return TBag(TRecord(fields))
    if isinstance(plan, ast.Default):
        from repro.data.types import join

        left = _infer(plan.left, env_type, input_type, constants)
        right = _infer(plan.right, env_type, input_type, constants)
        result = join(left, right)
        if isinstance(result, TTop) and not (
            isinstance(left, TTop) or isinstance(right, TTop)
        ):
            raise TypingError("|| branches have incompatible types: %r vs %r" % (left, right))
        return result
    if isinstance(plan, ast.MapEnv):
        element = _element(env_type, "χe")
        return TBag(_infer(plan.body, element, input_type, constants))
    raise TypingError("unknown NRAe node %r" % (plan,))
