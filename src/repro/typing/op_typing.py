"""Typing of the unary/binary data operators (paper §8, "type system").

Shared by the NRAe and NNRC type checkers.  Typing is partial:
:class:`TypingError` means "no typing derivation" — the analog of the
Coq development's failing typing judgment.
"""

from __future__ import annotations

from typing import Any

from repro.data import operators as ops
from repro.data.types import (
    QType,
    TBag,
    TBool,
    TBottom,
    TDate,
    TFloat,
    TNat,
    TRecord,
    TString,
    TTop,
    TUnit,
    is_subtype,
    join,
)


class TypingError(TypeError):
    """No typing derivation exists."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise TypingError(message)


def _element(t: QType, what: str) -> QType:
    if isinstance(t, TBottom):
        return TBottom()
    _require(isinstance(t, TBag), "%s expects a bag, got %r" % (what, t))
    return t.element


def _numeric(t: QType, what: str) -> QType:
    if isinstance(t, TBottom):
        return TBottom()
    _require(
        is_subtype(t, TFloat()), "%s expects a number, got %r" % (what, t)
    )
    return t


def _record_fields(t: QType, what: str) -> dict:
    if isinstance(t, TBottom):
        return {}
    _require(isinstance(t, TRecord), "%s expects a record, got %r" % (what, t))
    return t.field_map()


def type_unop(op: ops.UnaryOp, t: QType) -> QType:
    """The result type of ``op`` applied to a value of type ``t``."""
    if isinstance(op, ops.OpIdentity):
        return t
    if isinstance(op, ops.OpNeg):
        _require(is_subtype(t, TBool()), "¬ expects a boolean, got %r" % (t,))
        return TBool()
    if isinstance(op, ops.OpBag):
        return TBag(t)
    if isinstance(op, ops.OpFlatten):
        inner = _element(t, "flatten")
        return TBag(_element(inner, "flatten (inner)"))
    if isinstance(op, ops.OpRec):
        return TRecord({op.field: t})
    if isinstance(op, ops.OpDot):
        fields = _record_fields(t, ".%s" % op.field)
        if isinstance(t, TBottom):
            return TBottom()
        _require(op.field in fields, "record %r has no field %r" % (t, op.field))
        return fields[op.field]
    if isinstance(op, ops.OpRemove):
        fields = _record_fields(t, "−%s" % op.field)
        fields.pop(op.field, None)
        return TRecord(fields)
    if isinstance(op, ops.OpProject):
        fields = _record_fields(t, "π")
        return TRecord({k: v for k, v in fields.items() if k in op.fields})
    if isinstance(op, ops.OpDistinct):
        return TBag(_element(t, "distinct"))
    if isinstance(op, ops.OpCount):
        _element(t, "count")
        return TNat()
    if isinstance(op, ops.OpSum):
        element = _numeric(_element(t, "sum"), "sum")
        return TNat() if isinstance(element, (TNat, TBottom)) else TFloat()
    if isinstance(op, ops.OpAvg):
        _numeric(_element(t, "avg"), "avg")
        return TFloat()
    if isinstance(op, (ops.OpMin, ops.OpMax)):
        return _element(t, op.name)
    if isinstance(op, ops.OpSingleton):
        return _element(t, "elem")
    if isinstance(op, ops.OpToString):
        return TString()
    if isinstance(op, ops.OpNumNeg):
        return _numeric(t, "negate")
    if isinstance(op, (ops.OpSortBy, ops.OpLimit)):
        return TBag(_element(t, op.name))
    if isinstance(op, ops.OpLike):
        _require(is_subtype(t, TString()), "like expects a string, got %r" % (t,))
        return TBool()
    if isinstance(op, ops.OpSubstring):
        _require(is_subtype(t, TString()), "substring expects a string")
        return TString()
    if isinstance(op, (ops.OpDateYear, ops.OpDateMonth, ops.OpDateDay)):
        _require(is_subtype(t, TDate()), "%s expects a date, got %r" % (op.name, t))
        return TNat()
    raise TypingError("no typing rule for unary op %r" % (op,))


def type_binop(op: ops.BinaryOp, left: QType, right: QType) -> QType:
    """The result type of ``op`` applied to values of the given types."""
    if isinstance(op, ops.OpEq):
        return TBool()
    if isinstance(op, ops.OpIn):
        _element(right, "∈")
        return TBool()
    if isinstance(op, (ops.OpUnion, ops.OpBagDiff, ops.OpBagInter)):
        return TBag(join(_element(left, op.name), _element(right, op.name)))
    if isinstance(op, ops.OpConcat):
        fields = _record_fields(left, "⊕")
        fields.update(_record_fields(right, "⊕"))
        return TRecord(fields)
    if isinstance(op, ops.OpMergeConcat):
        fields = _record_fields(left, "⊗")
        fields.update(_record_fields(right, "⊗"))
        return TBag(TRecord(fields))
    if isinstance(op, (ops.OpLt, ops.OpLe, ops.OpGt, ops.OpGe)):
        comparable = (
            (is_subtype(left, TFloat()) and is_subtype(right, TFloat()))
            or (is_subtype(left, TString()) and is_subtype(right, TString()))
            or (is_subtype(left, TDate()) and is_subtype(right, TDate()))
            or isinstance(left, TBottom)
            or isinstance(right, TBottom)
        )
        _require(comparable, "%s on %r and %r" % (op.name, left, right))
        return TBool()
    if isinstance(op, (ops.OpAnd, ops.OpOr)):
        _require(
            is_subtype(left, TBool()) and is_subtype(right, TBool()),
            "%s expects booleans" % op.name,
        )
        return TBool()
    if isinstance(op, (ops.OpAdd, ops.OpSub, ops.OpMult)):
        _numeric(left, op.name)
        _numeric(right, op.name)
        if isinstance(left, TNat) and isinstance(right, TNat):
            return TNat()
        return TFloat()
    if isinstance(op, ops.OpDiv):
        _numeric(left, "/")
        _numeric(right, "/")
        return TFloat()
    if isinstance(op, ops.OpStrConcat):
        _require(
            is_subtype(left, TString()) and is_subtype(right, TString()),
            "|| expects strings",
        )
        return TString()
    if isinstance(
        op,
        (
            ops.OpDatePlusDays,
            ops.OpDateMinusDays,
            ops.OpDatePlusMonths,
            ops.OpDateMinusMonths,
            ops.OpDatePlusYears,
            ops.OpDateMinusYears,
        ),
    ):
        _require(is_subtype(left, TDate()), "%s expects a date" % op.name)
        _require(is_subtype(right, TNat()), "%s expects an int amount" % op.name)
        return TDate()
    raise TypingError("no typing rule for binary op %r" % (op,))
