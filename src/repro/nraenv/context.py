"""Parametric plans and plan instantiation (paper Definitions 5–7).

A *parametric plan* is a plan over plan variables ``$q0 … $qn``
(:class:`PlanVar` nodes).  *Instantiation* substitutes concrete plans
for the variables.  Two parametric plans are *parametric equivalent*
(``≡c`` for NRA, ``≡ec`` for NRAe) when every instantiation yields
equivalent plans.

Theorem 1 (equivalence lifting) states that every parametric NRA
equivalence is also a parametric NRAe equivalence.  Because this
implementation shares node classes between NRA and NRAe, the *lift* of a
parametric plan is the identity — which is exactly the paper's point:
"every NRA operator is also an NRAe operator".  What the theorem adds is
that instantiation with *environment-using* plans preserves equivalence;
:func:`repro.optim.verify.check_parametric_equivalence` tests that by
instantiating with random NRAe plans (env operators included).
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

from repro.nraenv import ast


class PlanVar(ast.NraeNode):
    """A plan variable ``$qi`` inside a parametric plan."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def children(self) -> Tuple[ast.NraeNode, ...]:
        return ()

    def rebuild(self, children: Tuple[ast.NraeNode, ...]) -> ast.NraeNode:
        return self

    def _tag(self) -> Tuple[Any, ...]:
        return ("PlanVar", self.index)

    def depth(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "$q%d" % self.index


def plan_vars(plan: ast.NraeNode) -> Tuple[int, ...]:
    """The sorted indices of plan variables occurring in ``plan``."""
    indices = sorted({node.index for node in plan.walk() if isinstance(node, PlanVar)})
    return tuple(indices)


def instantiate(plan: ast.NraeNode, args: Sequence[ast.NraeNode]) -> ast.NraeNode:
    """``c[q0, …, qn]``: substitute ``args[i]`` for ``$qi`` (Definition 6)."""

    def subst(node: ast.NraeNode) -> ast.NraeNode:
        if isinstance(node, PlanVar):
            if node.index >= len(args):
                raise ValueError("no instantiation for $q%d" % node.index)
            return args[node.index]
        return node

    return plan.transform_bottom_up(subst)


def is_parametric(plan: ast.NraeNode) -> bool:
    """True iff the plan contains at least one plan variable."""
    return bool(plan_vars(plan))


class ParametricEquivalence:
    """A directed or undirected equivalence between two parametric plans.

    This is the Python counterpart of the Coq statements like
    ``ctxt_select_union_distr``: a pair of parametric plans asserted to
    be ``≡c``/``≡ec``-equivalent.  ``is_nra_equivalence`` records whether
    both sides live in the NRA fragment (so Theorem 1 applies).
    """

    #: Variable sorts, for the empirical checker: "bag" (a plan producing
    #: a bag of records), "pred" (a boolean over a record input), "elem"
    #: (a record→value transformer), "any".
    def __init__(
        self,
        name: str,
        lhs: ast.NraeNode,
        rhs: ast.NraeNode,
        var_sorts: Sequence[str] = (),
    ):
        self.name = name
        self.lhs = lhs
        self.rhs = rhs
        self.var_sorts: Tuple[str, ...] = tuple(var_sorts)

    def sort_of(self, index: int) -> str:
        if index < len(self.var_sorts):
            return self.var_sorts[index]
        return "any"

    @property
    def arity(self) -> int:
        indices = set(plan_vars(self.lhs)) | set(plan_vars(self.rhs))
        return (max(indices) + 1) if indices else 0

    @property
    def is_nra_equivalence(self) -> bool:
        return ast.is_nra(self.lhs) and ast.is_nra(self.rhs)

    def instantiate(
        self, args: Sequence[ast.NraeNode]
    ) -> Tuple[ast.NraeNode, ast.NraeNode]:
        return instantiate(self.lhs, args), instantiate(self.rhs, args)

    def lift(self) -> "ParametricEquivalence":
        """Theorem 1: view an NRA parametric equivalence as an NRAe one.

        The embedding of syntax is the identity; lifting merely asserts
        the equivalence is now quantified over NRAe instantiations.
        """
        if not self.is_nra_equivalence:
            raise ValueError("%s is not a pure-NRA equivalence" % self.name)
        return ParametricEquivalence(
            self.name + "_lifted", self.lhs, self.rhs, self.var_sorts
        )

    def __repr__(self) -> str:
        return "ParametricEquivalence(%s: %r ≡ %r)" % (self.name, self.lhs, self.rhs)


def q(index: int) -> PlanVar:
    """Shorthand for ``$q`` plan variables: ``q(0), q(1), …``."""
    return PlanVar(index)


#: A small catalog of classic parametric NRA equivalences, used to
#: exercise Theorem 1 empirically (and reused by the optimizer tests).
def classic_nra_equivalences() -> Dict[str, ParametricEquivalence]:
    from repro.nraenv import builders as b

    catalog = {}

    def register(
        name: str, lhs: ast.NraeNode, rhs: ast.NraeNode, var_sorts: Sequence[str]
    ) -> None:
        catalog[name] = ParametricEquivalence(name, lhs, rhs, var_sorts)

    # σ⟨q0⟩(q1 ∪ q2) ≡ σ⟨q0⟩(q1) ∪ σ⟨q0⟩(q2)
    register(
        "select_union_distr",
        b.sigma(q(0), b.union(q(1), q(2))),
        b.union(b.sigma(q(0), q(1)), b.sigma(q(0), q(2))),
        ("pred", "bag", "bag"),
    )
    # χ⟨q0⟩(χ⟨q1⟩(q2)) ≡ χ⟨q0 ∘ q1⟩(q2)   (map fusion)
    register(
        "map_fusion",
        b.chi(q(0), b.chi(q(1), q(2))),
        b.chi(b.comp(q(0), q(1)), q(2)),
        ("elem", "elem", "bag"),
    )
    # σ⟨q0⟩(σ⟨q1⟩(q2)) ≡ σ⟨q1⟩(σ⟨q0⟩(q2))   (selection commutativity)
    register(
        "select_commute",
        b.sigma(q(0), b.sigma(q(1), q(2))),
        b.sigma(q(1), b.sigma(q(0), q(2))),
        ("pred", "pred", "bag"),
    )
    # χ⟨In⟩(q0) ≡ q0   (on bag-typed q0; a typed rewrite in the paper)
    register("map_id", b.chi(b.id_(), q(0)), q(0), ("bag",))
    # q1 ∪ q2 ≡ q2 ∪ q1   (union commutativity, multiset)
    register("union_commute", b.union(q(0), q(1)), b.union(q(1), q(0)), ("bag", "bag"))
    # flatten({q0}) ≡ q0   (on bag-typed q0)
    register("flatten_coll", b.flatten_(b.coll(q(0))), q(0), ("bag",))
    return catalog
