"""Operational semantics of NRAe (paper Figure 2).

Implements the judgment ``γ ⊢ q @ d ⇓a d'``: in environment ``γ``,
query ``q`` evaluated against input ``d`` produces ``d'``.

The semantics is partial — when no derivation exists (e.g. mapping over
a non-bag), :class:`EvalError` is raised.  Equivalence (Definition 3)
treats "both sides have no derivation" as agreement, and the
property-test harness in :mod:`repro.optim.verify` does the same.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Optional

from repro.data import kernel
from repro.data.model import Bag, DataError, Record
from repro.nraenv import ast


class EvalError(DataError):
    """No evaluation derivation exists for the given plan and inputs."""


#: Optional observability hook (see :mod:`repro.obs`).  ``None`` keeps
#: the interpreter on its bare path: the only cost is one global load
#: and an ``is None`` test per node.
_OBSERVER = None


def set_observer(observer) -> None:
    """Install (or with ``None``, remove) the evaluation observer.

    The observer receives ``on_node(plan)`` for every node evaluated,
    ``on_bag(size)`` for every intermediate bag an iterating operator
    consumes, and ``enter_env()``/``exit_env()`` around ``∘e`` frames
    (its high-water mark is the maximum environment-composition depth).
    """
    global _OBSERVER
    _OBSERVER = observer


#: EXPLAIN ANALYZE collector (see :mod:`repro.obs.analyze`).  Unlike
#: the observer, enabling it swaps the ``_eval`` dispatcher itself, so
#: the disabled path carries literally zero extra work — not even a
#: guard.  All recursion routes through the module-global ``_eval``
#: name, which makes the swap total.
_ANALYZER = None


def set_analyzer(analyzer) -> None:
    """Install (or with ``None``, remove) the EXPLAIN ANALYZE collector.

    The analyzer receives ``enter(plan)`` / ``exit(stats, seconds,
    result)`` around every node evaluation (``exit_error`` when the
    evaluation raises).  Swapping the dispatcher rather than guarding it
    keeps the off path identical to the uninstrumented interpreter.
    """
    global _ANALYZER, _eval
    _ANALYZER = analyzer
    _eval = _eval_plain if analyzer is None else _eval_analyzed


def eval_nraenv(
    plan: ast.NraeNode,
    env: Any = None,
    datum: Any = None,
    constants: Optional[Mapping[str, Any]] = None,
) -> Any:
    """Evaluate ``plan`` with environment ``env`` and input ``datum``.

    ``constants`` maps database constant names (tables) to values for
    :class:`~repro.nraenv.ast.GetConstant` nodes.
    """
    if env is None:
        env = Record({})
    constants = constants or {}
    return _eval(plan, env, datum, constants)


def _eval_plain(
    plan: ast.NraeNode, env: Any, datum: Any, constants: Mapping[str, Any]
) -> Any:
    observer = _OBSERVER
    if observer is not None:
        observer.on_node(plan)
    # (Constant)
    if isinstance(plan, ast.Const):
        return plan.value
    # (ID)
    if isinstance(plan, ast.ID):
        return datum
    if isinstance(plan, ast.GetConstant):
        if plan.cname not in constants:
            raise EvalError("unknown database constant %r" % plan.cname)
        return constants[plan.cname]
    # (Comp)
    if isinstance(plan, ast.App):
        intermediate = _eval(plan.before, env, datum, constants)
        return _eval(plan.after, env, intermediate, constants)
    # (Unary)
    if isinstance(plan, ast.Unop):
        value = _eval(plan.arg, env, datum, constants)
        try:
            return plan.op.apply(value)
        except DataError as exc:
            raise EvalError(str(exc)) from exc
    # (Binary)
    if isinstance(plan, ast.Binop):
        left = _eval(plan.left, env, datum, constants)
        right = _eval(plan.right, env, datum, constants)
        try:
            return plan.op.apply(left, right)
        except DataError as exc:
            raise EvalError(str(exc)) from exc
    # (Map, Map∅)
    if isinstance(plan, ast.Map):
        source = _eval(plan.input, env, datum, constants)
        _require_bag(source, "χ")
        if observer is not None:
            observer.on_bag(len(source))
        return Bag(_eval(plan.body, env, item, constants) for item in source)
    # (SelT, SelF, Sel∅)
    if isinstance(plan, ast.Select):
        source = _eval(plan.input, env, datum, constants)
        _require_bag(source, "σ")
        if observer is not None:
            observer.on_bag(len(source))
        kept = []
        for item in source:
            verdict = _eval(plan.pred, env, item, constants)
            if not isinstance(verdict, bool):
                raise EvalError("σ predicate returned non-boolean %r" % (verdict,))
            if verdict:
                kept.append(item)
        return Bag(kept)
    # (Prod, Prodˡ∅, Prodʳ∅)
    if isinstance(plan, ast.Product):
        left = _eval(plan.left, env, datum, constants)
        _require_bag(left, "×")
        if not left:
            return Bag([])
        right = _eval(plan.right, env, datum, constants)
        _require_bag(right, "×")
        if observer is not None:
            observer.on_bag(len(left))
            observer.on_bag(len(right))
        return _product(left, right)
    # (DJ, DJ∅)
    if isinstance(plan, ast.DepJoin):
        source = _eval(plan.input, env, datum, constants)
        _require_bag(source, "⋈d")
        if observer is not None:
            observer.on_bag(len(source))
        out = []
        for item in source:
            dependent = _eval(plan.body, env, item, constants)
            _require_bag(dependent, "⋈d body")
            out.extend(_product(Bag([item]), dependent).items)
        return Bag(out)
    # (Default¬∅, Default∅)
    if isinstance(plan, ast.Default):
        left = _eval(plan.left, env, datum, constants)
        if isinstance(left, Bag) and not left:
            return _eval(plan.right, env, datum, constants)
        return left
    # (Env)
    if isinstance(plan, ast.Env):
        return env
    # (Compᵉ)
    if isinstance(plan, ast.AppEnv):
        new_env = _eval(plan.before, env, datum, constants)
        if observer is None:
            return _eval(plan.after, new_env, datum, constants)
        observer.enter_env()
        try:
            return _eval(plan.after, new_env, datum, constants)
        finally:
            observer.exit_env()
    # (Mapᵉ, Mapᵉ∅)
    if isinstance(plan, ast.MapEnv):
        if not isinstance(env, Bag):
            raise EvalError("χe requires the environment to be a bag, got %r" % (env,))
        if observer is not None:
            observer.on_bag(len(env))
        return Bag(_eval(plan.body, item, datum, constants) for item in env)
    raise EvalError("unknown NRAe node %r" % (plan,))


def _eval_analyzed(
    plan: ast.NraeNode, env: Any, datum: Any, constants: Mapping[str, Any]
) -> Any:
    """The dispatcher installed by :func:`set_analyzer`: times every node."""
    analyzer = _ANALYZER
    stats = analyzer.enter(plan)
    start = time.perf_counter()
    try:
        result = _eval_plain(plan, env, datum, constants)
    except BaseException:
        analyzer.exit_error(stats, time.perf_counter() - start)
        raise
    analyzer.exit(stats, time.perf_counter() - start, result)
    return result


#: The active dispatcher; rebound by :func:`set_analyzer`.
_eval = _eval_plain


def _require_bag(value: Any, op: str) -> None:
    if not isinstance(value, Bag):
        raise EvalError("%s expects a bag, got %r" % (op, value))


def _product(left: Bag, right: Bag) -> Bag:
    # The cartesian loop itself lives in the kernel, shared by every
    # evaluator; this wrapper only converts the failure type.
    try:
        return kernel.product(left, right)
    except DataError as exc:
        raise EvalError(str(exc)) from exc
