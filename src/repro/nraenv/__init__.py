"""NRAe: the nested relational algebra with environments (paper §3).

This package is the paper's primary contribution: the algebra's syntax
(:mod:`~repro.nraenv.ast`), its operational semantics
(:mod:`~repro.nraenv.eval`), the ``Ie``/``Ii`` ignore predicates
(:mod:`~repro.nraenv.ignores`), parametric plans and the lifting-theorem
machinery (:mod:`~repro.nraenv.context`), and convenient plan builders
(:mod:`~repro.nraenv.builders`).
"""

from repro.nraenv.ast import (
    App,
    AppEnv,
    Binop,
    Const,
    Default,
    DepJoin,
    Env,
    GetConstant,
    ID,
    Map,
    MapEnv,
    NraeNode,
    Product,
    Select,
    Unop,
    is_nra,
    project,
    unnest,
)
from repro.nraenv.eval import EvalError, eval_nraenv
from repro.nraenv.exec import eval_fast
from repro.nraenv.ignores import ignores_env, ignores_id
from repro.nraenv.pretty import pretty

__all__ = [
    "App",
    "AppEnv",
    "Binop",
    "Const",
    "Default",
    "DepJoin",
    "Env",
    "EvalError",
    "GetConstant",
    "ID",
    "Map",
    "MapEnv",
    "NraeNode",
    "Product",
    "Select",
    "Unop",
    "eval_fast",
    "eval_nraenv",
    "ignores_env",
    "ignores_id",
    "is_nra",
    "pretty",
    "project",
    "unnest",
]
