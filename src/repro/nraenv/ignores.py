"""The ``Ie``/``Ii`` predicates (paper section 3.3).

``ignores_env(q)`` (the paper's ``Ie(q)``) holds when the evaluation of
``q`` cannot depend on the environment ``γ``; ``ignores_id(q)`` (the
paper's ``Ii(q)``) holds when it cannot depend on the input datum ``d``.

Both are *syntactic approximations*, sound but not complete, exactly as
in Q*cert (``cnraenv_ignores_env`` / ``cnraenv_ignores_id``): they are
used as preconditions of optimizer rewrites, so soundness is what
matters.  The key subtle cases:

- ``q2 ∘e q1`` ignores the environment as soon as ``q1`` does, because
  ``q2`` only ever sees the environment produced by ``q1``;
- ``q2 ∘ q1`` ignores the input as soon as ``q1`` does, because ``q2``
  only ever sees the value produced by ``q1``;
- ``χ⟨q2⟩(q1)`` (and σ, ⋈d) ignores the input as soon as ``q1`` does,
  because the body's input is the bag elements, not ``d``.
"""

from __future__ import annotations

from repro.nraenv import ast


def ignores_env(plan: ast.NraeNode) -> bool:
    """``Ie(q)``: the plan provably never reads the environment."""
    if isinstance(plan, (ast.Const, ast.ID, ast.GetConstant)):
        return True
    if isinstance(plan, ast.Env):
        return False
    if isinstance(plan, ast.MapEnv):
        return False
    if isinstance(plan, ast.AppEnv):
        # ``after`` runs in the environment computed by ``before``.
        return ignores_env(plan.before)
    return all(ignores_env(child) for child in plan.children())


def ignores_id(plan: ast.NraeNode) -> bool:
    """``Ii(q)``: the plan provably never reads the input datum."""
    if isinstance(plan, (ast.Const, ast.GetConstant, ast.Env)):
        return True
    if isinstance(plan, ast.ID):
        return False
    if isinstance(plan, ast.App):
        # ``after`` runs on the value computed by ``before``.
        return ignores_id(plan.before)
    if isinstance(plan, (ast.Map, ast.Select, ast.DepJoin)):
        # The body's input is the bag elements, not the outer datum.
        return ignores_id(plan.input)
    if isinstance(plan, ast.MapEnv):
        return ignores_id(plan.body)
    return all(ignores_id(child) for child in plan.children())
