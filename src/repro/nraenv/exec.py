"""An execution engine for NRAe plans: hash joins over σ-×-chains.

:mod:`repro.nraenv.eval` is the *semantics* — a direct transcription of
Figure 2, where ``σ⟨p⟩(q1 × q2)`` materialises the full Cartesian
product.  This module is the *engine*: same language, same answers, but
``Select`` over a (nested) ``Product`` is executed as a multi-way join:

1. the product tree is flattened into factors and the predicate into
   conjuncts;
2. each conjunct is analysed for the input fields it reads (sound,
   syntactic: every ``In`` must occur as ``In.f``);
3. factors are joined greedily — hash joins on available equality
   conjuncts, smallest-first Cartesian products otherwise — applying
   each residual conjunct as soon as its fields are available.

When the shape analysis fails (a conjunct reads ``In`` whole, a factor
is not a bag of records, …) the engine falls back to the reference
semantics for that node, so the engine is *total* on whatever the
semantics accepts.

On top of the join executor this module carries three batch fast paths
(DESIGN.md §10), all under the same fallback contract:

- **physical group-by** — the derived group-by of paper §3.2
  (``χ⟨(In ⊕ [partition: σ⟨key(In)=Env.k⟩(q)]) ∘e (Env ⊕ [k: In])⟩
  (♯distinct(χ⟨key(In)⟩(q)))``, what :func:`repro.nraenv.builders.group_by`
  and the SQL translator emit) re-evaluates ``q`` and re-scans it with
  a fresh σ once per distinct key — O(groups·n) plan evaluations.
  :func:`_execute_group_by` recognises the shape and runs it as one
  hash-bucketing pass over a single evaluation of ``q``;
- **uncorrelated-subquery hoisting** — an ``x ∈ (subquery)`` conjunct
  whose right side provably cannot read the row (:func:`_analyse_dependence`)
  is evaluated once and replaced by its constant value, so the IN list
  is built once instead of once per candidate row (and the kernel's
  key index makes each remaining membership probe O(1));
- **batch select/project** — filters of the shape ``row.path ∈ constant``
  / ``row.path = constant`` and maps whose body is a pure field
  projection run as one-pass column operations
  (:mod:`repro.data.batch`) instead of per-row AST dispatch;
- **fused columnar chains** — a chain of σ/χ stages over a registered
  dataset (``GetConstant``/constant-bag base) compiles into one pass
  over the base's columns (:mod:`repro.data.columnar`): predicate
  conjuncts become column-at-a-time masks, alias/projection stages
  become column selection, and rows materialise only where results
  escape the fused region (or a conjunct resists compilation and runs
  per-row on the survivors).  The same mask compiler accelerates the
  join executor's residual (non-equi) conjuncts.  Counted
  ``columnar_shape``/``columnar_fallback`` fallbacks return the node to
  the reference row path; :func:`set_columnar_enabled` is the kill
  switch (benchmarks use it for the columnar-vs-row ratio gate).

Correctness contract (property-tested): on any plan and inputs where
the reference evaluator succeeds, the engine returns the same bag.  On
ill-typed inputs the engine may fail where the semantics succeeds or
vice versa (it reorders and skips predicate evaluations, as any real
executor does); the typed-plans caveat is the same one Definition 4
makes for rewrites.
"""

from __future__ import annotations

import time
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.data import batch, columnar, kernel
from repro.data import operators as ops
from repro.data.columnar import MISSING, ColumnarBag
from repro.data.model import Bag, DataError, Record, canonical_key
from repro.nraenv import ast
from repro.nraenv.eval import EvalError, eval_nraenv
from repro.obs.context import current_query_id
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer


#: Fallback reasons the engine can report (see :func:`_fallback`); kept
#: as a tuple so tests and ``repro explain`` can enumerate them.  The
#: first four belong to the join executor, the next two to the physical
#: group-by (:func:`_execute_group_by`), and the last two to the fused
#: columnar chain executor (:func:`_execute_fused`).
FALLBACK_REASONS = (
    "single_factor",
    "env_not_record",
    "ambiguous_field",
    "unresolved_field",
    "group_pattern",
    "group_shape",
    "columnar_shape",
    "columnar_fallback",
)

#: Human-readable fallback reasons, for the EXPLAIN ANALYZE tree.
FALLBACK_LABELS = {
    "single_factor": "single factor (no product to join)",
    "env_not_record": "environment is not a record",
    "ambiguous_field": "ambiguous field across factors",
    "unresolved_field": "unresolved field in predicate",
    "group_pattern": "group-by candidate did not match the derived pattern",
    "group_shape": "group-by source failed shape analysis",
    "columnar_shape": "columnar chain failed shape analysis",
    "columnar_fallback": "no predicate conjunct compiled to column masks",
}


def _fallback(select: ast.Select, reason: str) -> None:
    """Record one engine→reference fallback under ``engine.fallback.<reason>``.

    The engine used to fall back *silently*; now every ``return None``
    out of :func:`_execute_join` is counted (with its reason) in the
    active :mod:`repro.obs` metrics registry, and ``repro explain``
    surfaces the totals.  With no registry installed this is a no-op.
    When an EXPLAIN ANALYZE collector is active, the reason is also
    pinned to the ``select`` node so the annotated tree can show *why*
    that node fell back, inline.
    """
    get_metrics().counter("engine.fallback." + reason).inc()
    analyzer = _ANALYZER
    if analyzer is not None:
        analyzer.on_join(select, reason)
    return None


def _group_fallback(plan: ast.Map, reason: str) -> None:
    """The group-by twin of :func:`_fallback`, pinned to the χ node."""
    get_metrics().counter("engine.fallback." + reason).inc()
    analyzer = _ANALYZER
    if analyzer is not None:
        analyzer.on_group(plan, reason)
    return None


def _columnar_fallback(plan: ast.NraeNode, reason: str) -> None:
    """The fused-chain twin of :func:`_fallback`, pinned to the chain root."""
    get_metrics().counter("engine.fallback." + reason).inc()
    analyzer = _ANALYZER
    if analyzer is not None:
        analyzer.on_columnar(plan, reason)
    return None


#: Kill switch for the fused columnar executor (chains *and* the join
#: engine's columnar residual masks).  The benchmark ratio gate flips
#: it to compare fused-columnar against the row-at-a-time engine.
_COLUMNAR_ENABLED = True

#: Fused outputs at or above this cardinality get a derived columnar
#: view attached (lazy column slices), so a downstream group-by or
#: chain can keep working column-wise; smaller outputs are not worth
#: the bookkeeping.
_COLUMNAR_ATTACH_MIN = 32


def set_columnar_enabled(enabled: bool) -> bool:
    """Enable/disable fused columnar execution; returns the old value."""
    global _COLUMNAR_ENABLED
    previous = _COLUMNAR_ENABLED
    _COLUMNAR_ENABLED = bool(enabled)
    return previous


def columnar_enabled() -> bool:
    return _COLUMNAR_ENABLED


#: EXPLAIN ANALYZE collector (see :mod:`repro.obs.analyze` and the
#: twin hook in :mod:`repro.nraenv.eval`).  Enabling swaps the engine's
#: ``_eval`` dispatcher; disabled, the hot path is untouched.
_ANALYZER = None


def set_analyzer(analyzer) -> None:
    """Install (or with ``None``, remove) the EXPLAIN ANALYZE collector."""
    global _ANALYZER, _eval
    _ANALYZER = analyzer
    _eval = _eval_plain if analyzer is None else _eval_analyzed


def eval_fast(
    plan: ast.NraeNode,
    env: Any = None,
    datum: Any = None,
    constants: Optional[Mapping[str, Any]] = None,
) -> Any:
    """Evaluate like :func:`~repro.nraenv.eval.eval_nraenv`, with joins."""
    if env is None:
        env = Record({})
    constants = constants or {}
    tracer = get_tracer()
    if not tracer.enabled:
        return _eval(plan, env, datum, constants)
    span_args: Dict[str, Any] = {}
    query_id = current_query_id()
    if query_id is not None:
        span_args["query_id"] = query_id
    with tracer.span("engine.execute", category="engine", **span_args):
        return _eval(plan, env, datum, constants)


# ---------------------------------------------------------------------------
# Predicate analysis
# ---------------------------------------------------------------------------


def _conjuncts(pred: ast.NraeNode) -> List[ast.NraeNode]:
    if isinstance(pred, ast.Binop) and isinstance(pred.op, ops.OpAnd):
        return _conjuncts(pred.left) + _conjuncts(pred.right)
    return [pred]


def _analyse_conjunct(
    pred: ast.NraeNode, env_mode: bool = False
) -> Tuple[FrozenSet[str], bool]:
    """(row fields read, reads-whole-row?) for a conjunct.

    Tracks two visibilities while walking: whether ``In`` still denotes
    the product row (rebound by χ/σ/⋈d bodies and by ∘'s left operand)
    and — in env-mode, where the row is also in the environment as
    ``γ ⊕ row`` — whether ``Env`` still denotes it (rebound by ∘e's left
    operand and by χe bodies).  A bare ``In``/``Env`` occurrence while
    visible means the conjunct depends on the row as a whole: it is
    still executable, but only on fully assembled rows (no pushdown).
    """
    fields: set = set()
    whole_row = False

    def walk(node: ast.NraeNode, in_visible: bool, env_visible: bool) -> None:
        nonlocal whole_row
        if isinstance(node, ast.ID):
            if in_visible:
                whole_row = True
            return
        if isinstance(node, ast.Env):
            if env_visible:
                whole_row = True
            return
        if isinstance(node, ast.Unop) and isinstance(node.op, ops.OpDot):
            if in_visible and isinstance(node.arg, ast.ID):
                fields.add(node.op.field)
                return
            if env_visible and isinstance(node.arg, ast.Env):
                fields.add(node.op.field)
                return
            walk(node.arg, in_visible, env_visible)
            return
        if isinstance(node, (ast.Map, ast.Select, ast.DepJoin)):
            body, source = node.children()[0], node.children()[1]
            walk(source, in_visible, env_visible)
            walk(body, False, env_visible)
            return
        if isinstance(node, ast.App):
            walk(node.before, in_visible, env_visible)
            walk(node.after, False, env_visible)
            return
        if isinstance(node, ast.AppEnv):
            walk(node.before, in_visible, env_visible)
            walk(node.after, in_visible, False)
            return
        if isinstance(node, ast.MapEnv):
            if env_visible:
                # χe over γ ⊕ row (a record) would be a type error in the
                # reference semantics; treat as whole-row to stay exact.
                whole_row = True
                return
            walk(node.body, in_visible, False)
            return
        for child in node.children():
            walk(child, in_visible, env_visible)

    walk(pred, True, env_mode)
    return frozenset(fields), whole_row


#: A join-key side: a field path of length 1 (``row.f``) or 2
#: (``row.t.f`` — a qualified alias access).
Path = Tuple[str, ...]


def _row_path(node: ast.NraeNode, env_mode: bool) -> Optional[Path]:
    """Match ``In.f`` / ``Env.f`` / ``Env.t.f`` (env-mode); return the path."""
    if isinstance(node, ast.Unop) and isinstance(node.op, ops.OpDot):
        if isinstance(node.arg, ast.ID):
            return (node.op.field,)
        if env_mode and isinstance(node.arg, ast.Env):
            return (node.op.field,)
        inner = node.arg
        if (
            isinstance(inner, ast.Unop)
            and isinstance(inner.op, ops.OpDot)
            and (
                isinstance(inner.arg, ast.ID)
                or (env_mode and isinstance(inner.arg, ast.Env))
            )
        ):
            return (inner.op.field, node.op.field)
    return None


def _equality_key(
    pred: ast.NraeNode, env_mode: bool = False
) -> Optional[Tuple[Path, Path]]:
    """Match ``path1 = path2`` (an equi-join conjunct over row paths)."""
    if isinstance(pred, ast.Binop) and isinstance(pred.op, ops.OpEq):
        left = _row_path(pred.left, env_mode)
        right = _row_path(pred.right, env_mode)
        if left is not None and right is not None:
            return (left, right)
    return None


#: "Not compiled yet" marker for :attr:`_Conjunct.columnar` (``None``
#: means "tried and not compilable", so a third state is needed).
_UNSET = object()


class _Conjunct:
    def __init__(self, pred: ast.NraeNode, env_mode: bool):
        self.pred = pred
        self.fields, self.whole_row = _analyse_conjunct(pred, env_mode)
        self.equality = _equality_key(pred, env_mode)
        self.batch: Optional[Tuple[Path, Any, str]] = None
        self.columnar: Any = _UNSET  # lazily a compiled mask entry
        self.applied = False


# ---------------------------------------------------------------------------
# Dependence analysis
# ---------------------------------------------------------------------------


class _Dependence:
    """What a plan may read from its *ambient* evaluation context.

    ``reads_input`` — the ambient datum (``In``) is consulted anywhere
    it is still visible.  ``whole_env`` — the ambient environment is
    exposed as a whole value (bare ``Env``, or flows into a ``χe``).
    ``env_reads`` — ambient environment fields read as ``Env.f`` where
    ``f`` is not certainly shadowed by an intervening ``∘e`` builder.
    All three are *may* facts (conservative over-approximations): if the
    walker reports none, evaluating the plan under a different ambient
    datum / a differently-extended ambient environment provably yields
    the same value.
    """

    __slots__ = ("env_reads", "whole_env", "reads_input")

    def __init__(self) -> None:
        self.env_reads: set = set()
        self.whole_env = False
        self.reads_input = False


def _analyse_dependence(plan: ast.NraeNode) -> _Dependence:
    """Conservative ambient-context dependence of ``plan``.

    The walker tracks, per subexpression, whether the ambient ``In`` is
    still visible (rebound by χ/σ/⋈d bodies and by ∘'s left operand),
    whether ``Env`` still chains to the *ambient* environment, and which
    ambient fields an ``∘e`` builder chain has certainly shadowed.  A
    builder of the translator's shape ``Env ⊕ … ⊕ [f: _]`` keeps the
    ambient chain alive but binds ``f``; any other builder installs a
    fresh environment (its own ambient reads are still recorded).
    """
    info = _Dependence()

    def walk(
        node: ast.NraeNode,
        in_visible: bool,
        env_live: bool,
        shadowed: FrozenSet[str],
    ) -> None:
        if isinstance(node, ast.ID):
            if in_visible:
                info.reads_input = True
            return
        if isinstance(node, ast.Env):
            if env_live:
                info.whole_env = True
            return
        if isinstance(node, ast.Unop):
            if isinstance(node.op, ops.OpDot):
                if isinstance(node.arg, ast.Env):
                    if env_live and node.op.field not in shadowed:
                        info.env_reads.add(node.op.field)
                    return
                if isinstance(node.arg, ast.ID):
                    if in_visible:
                        info.reads_input = True
                    return
            walk(node.arg, in_visible, env_live, shadowed)
            return
        if isinstance(node, (ast.Map, ast.Select, ast.DepJoin)):
            body, source = node.children()[0], node.children()[1]
            walk(source, in_visible, env_live, shadowed)
            walk(body, False, env_live, shadowed)
            return
        if isinstance(node, ast.App):
            walk(node.before, in_visible, env_live, shadowed)
            walk(node.after, False, env_live, shadowed)
            return
        if isinstance(node, ast.AppEnv):
            live, bound = builder(node.before, in_visible, env_live, shadowed)
            walk(node.after, in_visible, live, (shadowed | bound) if live else frozenset())
            return
        if isinstance(node, ast.MapEnv):
            if env_live:
                # the ambient environment is iterated as a bag: whole use
                info.whole_env = True
                return
            walk(node.body, in_visible, False, frozenset())
            return
        for child in node.children():
            walk(child, in_visible, env_live, shadowed)

    def builder(
        node: ast.NraeNode,
        in_visible: bool,
        env_live: bool,
        shadowed: FrozenSet[str],
    ) -> Tuple[bool, FrozenSet[str]]:
        """(still chains to ambient env?, fields certainly bound) of an ∘e builder."""
        if isinstance(node, ast.Env):
            return env_live, frozenset()
        if isinstance(node, ast.Binop) and isinstance(node.op, ops.OpConcat):
            live, bound = builder(node.left, in_visible, env_live, shadowed)
            right = node.right
            if isinstance(right, ast.Unop) and isinstance(right.op, ops.OpRec):
                walk(right.arg, in_visible, env_live, shadowed)
                return live, bound | frozenset((right.op.field,))
            walk(right, in_visible, env_live, shadowed)
            return live, bound
        walk(node, in_visible, env_live, shadowed)
        return False, frozenset()

    walk(plan, True, True, frozenset())
    return info


# ---------------------------------------------------------------------------
# Column-at-a-time predicate masks (shared by fused chains and the join
# executor's residual conjuncts)
# ---------------------------------------------------------------------------

#: Binary operators safe to apply element-wise over columns: scalar in,
#: scalar out, no environment or input sensitivity beyond their
#: operands.  The reference evaluates both operands of every ``Binop``
#: (no short-circuit), so element-wise evaluation raises on exactly the
#: rows per-row evaluation would (modulo the engine's documented
#: freedom to reorder/skip predicate work).
_MASK_BINOPS = (
    ops.OpEq,
    ops.OpIn,
    ops.OpLt,
    ops.OpLe,
    ops.OpGt,
    ops.OpGe,
    ops.OpAnd,
    ops.OpOr,
    ops.OpAdd,
    ops.OpSub,
    ops.OpMult,
    ops.OpDiv,
    ops.OpStrConcat,
    ops.OpDatePlusDays,
    ops.OpDateMinusDays,
    ops.OpDatePlusMonths,
    ops.OpDateMinusMonths,
    ops.OpDatePlusYears,
    ops.OpDateMinusYears,
)

#: Unary operators safe to apply element-wise (same criterion).
_MASK_UNOPS = (
    ops.OpLike,
    ops.OpNeg,
    ops.OpNumNeg,
    ops.OpToString,
    ops.OpSubstring,
    ops.OpDateYear,
    ops.OpDateMonth,
    ops.OpDateDay,
)


def _mask_row_free(
    expr: ast.NraeNode, env_mode: bool, visible_fields: FrozenSet[str]
) -> bool:
    """True iff ``expr`` provably evaluates the same for every row.

    No visible ``In`` reads; in env-mode (where the row rides in the
    environment as ``γ ⊕ row``) additionally no whole-env exposure and
    no ``Env.f`` read of a field the row could shadow (``f`` among the
    chain's visible fields).  Such an expression can be evaluated once
    per σ application instead of once per row.
    """
    info = _analyse_dependence(expr)
    if info.reads_input:
        return False
    if env_mode:
        if info.whole_env:
            return False
        for field in info.env_reads:
            if field in visible_fields:
                return False
    return True


def _compile_mask(
    pred: ast.NraeNode,
    env_mode: bool,
    resolve,
    visible_fields: FrozenSet[str],
):
    """Compile a conjunct into a column-mask entry tree, or None.

    ``resolve(path)`` maps a row path to a column getter (a callable of
    the executor's carrier — a selection for fused chains, a partial
    for the join engine) or None when the path has no sound column.
    Leaves are resolved paths and row-free subexpressions; interior
    nodes are the element-wise-safe operators above.  A None anywhere
    means the conjunct stays on the per-row path.
    """

    def compile_expr(expr: ast.NraeNode):
        path = _row_path(expr, env_mode)
        if path is not None:
            getter = resolve(path)
            if getter is not None:
                return ("col", getter)
            # fall through: an Env.f that is not a column may still be
            # a row-free outer-environment read
        if _mask_row_free(expr, env_mode, visible_fields):
            return ("const", expr)
        if isinstance(expr, ast.Binop) and isinstance(expr.op, _MASK_BINOPS):
            left = compile_expr(expr.left)
            if left is None:
                return None
            right = compile_expr(expr.right)
            if right is None:
                return None
            return ("bin", expr.op, left, right)
        if isinstance(expr, ast.Unop) and isinstance(expr.op, _MASK_UNOPS):
            arg = compile_expr(expr.arg)
            if arg is None:
                return None
            return ("un", expr.op, arg)
        return None

    return compile_expr(pred)


def _mask_eval(entry, carrier, env, datum, constants):
    """Evaluate a compiled mask entry; returns ``(is_column, payload)``.

    ``payload`` is a value list aligned with the carrier's rows when
    ``is_column``, else one scalar (a row-free subresult, broadcast by
    the binary/unary cases).  Equality and membership against a scalar
    side go through canonical keys — the same comparison ``OpEq``/
    ``OpIn`` apply, with the scalar keyed once per column instead of
    once per row.  Operator errors wrap into :class:`EvalError` exactly
    like the reference dispatcher's ``op.apply`` calls.
    """
    tag = entry[0]
    if tag == "col":
        return True, entry[1](carrier)
    if tag == "const":
        return False, _eval(entry[1], env, datum, constants)
    if tag == "un":
        op = entry[1]
        is_column, value = _mask_eval(entry[2], carrier, env, datum, constants)
        try:
            if is_column:
                return True, [op.apply(v) for v in value]
            return False, op.apply(value)
        except EvalError:
            raise
        except Exception as exc:  # DataError
            raise EvalError(str(exc)) from exc
    op = entry[1]
    lcol, left = _mask_eval(entry[2], carrier, env, datum, constants)
    rcol, right = _mask_eval(entry[3], carrier, env, datum, constants)
    try:
        if isinstance(op, ops.OpEq) and lcol != rcol:
            if lcol:
                key = canonical_key(right)
                return True, [canonical_key(v) == key for v in left]
            key = canonical_key(left)
            return True, [canonical_key(v) == key for v in right]
        if isinstance(op, ops.OpIn) and lcol and not rcol and isinstance(right, Bag):
            index = kernel.key_index(right)
            return True, [canonical_key(v) in index for v in left]
        if lcol and rcol:
            return True, [op.apply(a, b) for a, b in zip(left, right)]
        if lcol:
            return True, [op.apply(a, right) for a in left]
        if rcol:
            return True, [op.apply(left, b) for b in right]
        return False, op.apply(left, right)
    except EvalError:
        raise
    except Exception as exc:  # DataError
        raise EvalError(str(exc)) from exc


# ---------------------------------------------------------------------------
# Fused columnar chains
# ---------------------------------------------------------------------------

#: Column-map marker: the visible field holds the whole base row (the
#: translator's scan alias ``χ⟨In ⊕ [t: In]⟩``).
_ROW = object()


class _Absent:
    """Column-map marker: a projection names a field no row can have.

    The reference raises per surviving row; the fused executor raises
    at materialisation iff any row survives (an empty selection never
    evaluates the projection body, exactly like ``χ`` over no rows).
    """

    __slots__ = ("field",)

    def __init__(self, field: str):
        self.field = field


def _match_alias(body: ast.NraeNode) -> Optional[str]:
    """Match the scan-alias body ``In ⊕ [t: In]``; return ``t``."""
    if (
        isinstance(body, ast.Binop)
        and isinstance(body.op, ops.OpConcat)
        and isinstance(body.left, ast.ID)
        and isinstance(body.right, ast.Unop)
        and isinstance(body.right.op, ops.OpRec)
        and isinstance(body.right.arg, ast.ID)
    ):
        return body.right.op.field
    return None


def _match_chain(plan: ast.NraeNode):
    """Match a fusable σ/χ chain down to a dataset base.

    Stages, root→base order: ``("filter", pred, env_mode)`` for σ
    (unwrapping the translator's ``p ∘e (Env ⊕ In)`` row shape),
    ``("alias", t)`` for the scan alias χ, ``("project", pairs)`` for a
    pure field-projection χ.  The base must be a ``GetConstant`` or a
    constant bag, and the chain must contain at least one filter
    (pure projections already have the batch path).  Returns
    ``(base, stages)`` or None.
    """
    stages: List[tuple] = []
    filters = 0
    node = plan
    while True:
        if isinstance(node, ast.Select):
            pred = node.pred
            env_mode = False
            if (
                isinstance(pred, ast.AppEnv)
                and isinstance(pred.before, ast.Binop)
                and isinstance(pred.before.op, ops.OpConcat)
                and isinstance(pred.before.left, ast.Env)
                and isinstance(pred.before.right, ast.ID)
            ):
                env_mode = True
                pred = pred.after
            stages.append(("filter", pred, env_mode))
            filters += 1
            node = node.input
            continue
        if isinstance(node, ast.Map):
            alias = _match_alias(node.body)
            if alias is not None:
                stages.append(("alias", alias))
                node = node.input
                continue
            pairs = _key_record_fields(node.body)
            if pairs is not None:
                stages.append(("project", pairs))
                node = node.input
                continue
            return None
        if isinstance(node, ast.GetConstant):
            break
        if isinstance(node, ast.Const) and isinstance(node.value, Bag):
            break
        return None
    if not filters:
        return None
    return node, stages


def _fused_resolver(cb: ColumnarBag, base_rows, colmap: Dict[str, Any]):
    """Path → column getter for a chain state (carrier: a selection).

    Paths over columns with missing values resolve to None — those rows
    would error (``In.f``) or read the outer environment (``Env.f``)
    per row, so the conjunct must stay on the exact per-row path.
    """

    def resolve(path: Path):
        src = colmap.get(path[0])
        if src is None or isinstance(src, _Absent):
            return None
        if src is _ROW:
            if len(path) == 1:
                return lambda selection: [base_rows[i] for i in selection]
            field = path[1]
            if not cb.has_field(field) or cb.has_missing(field):
                return None

            def row_getter(selection, field=field):
                column = cb.column(field)
                return [column[i] for i in selection]

            return row_getter
        if cb.has_missing(src):
            return None
        if len(path) == 1:

            def getter(selection, src=src):
                column = cb.column(src)
                return [column[i] for i in selection]

            return getter
        field = path[1]

        def nested_getter(selection, src=src, field=field, path=path):
            column = cb.column(src)
            out = []
            for i in selection:
                value = column[i]
                if not isinstance(value, Record):
                    raise EvalError(
                        "path %s: %r is not a record" % (".".join(path), value)
                    )
                try:
                    out.append(value[field])
                except DataError as exc:
                    raise EvalError(str(exc)) from exc
            return out

        return nested_getter

    return resolve


def _fused_row(
    index: int,
    colmap: Dict[str, Any],
    identity: bool,
    cb: ColumnarBag,
    base_rows,
) -> Record:
    """Materialise the visible record for base row ``index``.

    Scan shapes (identity/alias) skip missing column positions — the
    row simply lacks the field, matching ``row ⊕ [t: row]``; projection
    shapes validated their sources before the column map was installed,
    so no selected position is missing there.
    """
    if identity:
        return base_rows[index]
    data = {}
    for name, src in colmap.items():
        if isinstance(src, _Absent):
            raise EvalError("record has no attribute %r" % (src.field,))
        if src is _ROW:
            data[name] = base_rows[index]
        else:
            value = cb.column(src)[index]
            if value is not MISSING:
                data[name] = value
    return Record(data)


def _execute_fused(
    plan: ast.NraeNode, env: Any, datum: Any, constants: Mapping[str, Any]
) -> Optional[Bag]:
    """Execute a matched σ/χ chain as one fused pass over columns.

    Two passes.  The *static* pass walks the stages base→root keeping a
    column map (visible field → base column, whole-row marker, or
    absent) and compiles every filter conjunct against it — masks where
    the compiler succeeds, per-row residuals otherwise.  The *dynamic*
    pass then runs the steps over a shrinking index selection into the
    base columns: masks element-wise, projections as (validated) column
    map rewrites, residuals by materialising only the surviving rows.
    Returns None after counting ``columnar_shape`` (base/env shape
    unsuitable) or ``columnar_fallback`` (no conjunct compiled), and
    the caller re-runs the node on the reference row path.
    """
    matched = _match_chain(plan)
    if matched is None:
        return None
    base_node, stages = matched
    base_bag = _eval(base_node, env, datum, constants)
    if not isinstance(base_bag, Bag):
        return None  # let the reference raise its σ/χ shape error
    try:
        cb = columnar.ensure_columnar(base_bag)
    except DataError:
        return _columnar_fallback(plan, "columnar_shape")
    base_rows = base_bag.items

    # -- static pass: column maps + mask compilation -----------------------
    colmap: Dict[str, Any] = {name: name for name in cb.fields()}
    identity = True
    steps: List[tuple] = []
    compiled_any = False
    for stage in reversed(stages):
        kind = stage[0]
        if kind == "alias":
            if not identity:
                return _columnar_fallback(plan, "columnar_shape")
            colmap = dict(colmap)
            colmap[stage[1]] = _ROW
            identity = False
            continue
        if kind == "project":
            resolved = []
            new_map: Dict[str, Any] = {}
            for name, field in stage[1]:
                src = colmap[field] if field in colmap else _Absent(field)
                resolved.append((name, src))
                new_map[name] = src
            steps.append(("project", tuple(resolved)))
            colmap = new_map
            identity = False
            continue
        _, pred, env_mode = stage
        if env_mode and not isinstance(env, Record):
            return _columnar_fallback(plan, "columnar_shape")
        resolve = _fused_resolver(cb, base_rows, colmap)
        visible = frozenset(colmap)
        masks: List[Any] = []
        residual: List[ast.NraeNode] = []
        for conj in _conjuncts(pred):
            entry = _compile_mask(conj, env_mode, resolve, visible)
            if entry is None:
                residual.append(conj)
            else:
                masks.append(entry)
                compiled_any = True
        steps.append(("filter", masks, residual, env_mode, colmap, identity))
    if not compiled_any:
        return _columnar_fallback(plan, "columnar_fallback")

    # -- dynamic pass: one shrinking selection over the base columns -------
    selection = list(range(len(base_rows)))
    row_cache: Dict[int, Record] = {}
    for step in steps:
        if not selection:
            break
        if step[0] == "project":
            for _, src in step[1]:
                if isinstance(src, _Absent):
                    raise EvalError(
                        "record has no attribute %r" % (src.field,)
                    )
                if src is not _ROW and cb.has_missing(src):
                    column = cb.column(src)
                    for i in selection:
                        if column[i] is MISSING:
                            raise EvalError(
                                "record has no attribute %r" % (src,)
                            )
            row_cache = {}
            continue
        _, masks, residual, env_mode, step_map, step_identity = step
        for entry in masks:
            if not selection:
                break
            is_column, verdicts = _mask_eval(entry, selection, env, datum, constants)
            if not is_column:
                if not isinstance(verdicts, bool):
                    raise EvalError(
                        "σ predicate returned non-boolean %r" % (verdicts,)
                    )
                if not verdicts:
                    selection = []
                continue
            kept = []
            for index, verdict in zip(selection, verdicts):
                if not isinstance(verdict, bool):
                    raise EvalError(
                        "σ predicate returned non-boolean %r" % (verdict,)
                    )
                if verdict:
                    kept.append(index)
            selection = kept
        if residual and selection:
            kept = []
            for index in selection:
                row = row_cache.get(index)
                if row is None:
                    row = _fused_row(index, step_map, step_identity, cb, base_rows)
                    row_cache[index] = row
                if all(
                    _check(pred, row, env, constants, env_mode)
                    for pred in residual
                ):
                    kept.append(index)
            selection = kept

    # -- materialise the escape ---------------------------------------------
    if identity and len(selection) == len(base_rows):
        result = base_bag
    else:
        if identity:
            out_rows = [base_rows[i] for i in selection]
        else:
            out_rows = []
            for i in selection:
                row = row_cache.get(i)
                if row is None:
                    row = _fused_row(i, colmap, identity, cb, base_rows)
                out_rows.append(row)
        result = Bag(out_rows)
        if len(out_rows) >= _COLUMNAR_ATTACH_MIN and not any(
            isinstance(src, _Absent) for src in colmap.values()
        ):
            result._columnar = ColumnarBag.derived(
                cb, tuple(selection), colmap, tuple(out_rows)
            )
    get_metrics().counter("engine.columnar").inc()
    analyzer = _ANALYZER
    if analyzer is not None:
        analyzer.on_columnar(plan, None)
        analyzer.add_input(plan, len(base_rows))
    return result


# ---------------------------------------------------------------------------
# The join executor
# ---------------------------------------------------------------------------


def _flatten_product(plan: ast.NraeNode) -> List[ast.NraeNode]:
    if isinstance(plan, ast.Product):
        return _flatten_product(plan.left) + _flatten_product(plan.right)
    return [plan]


class _Relation:
    """A materialised factor: rows + certain (∩) and possible (∪) fields."""

    def __init__(
        self, rows: List[Record], domain: FrozenSet[str], union_domain: FrozenSet[str]
    ):
        self.rows = rows
        self.domain = domain
        self.union_domain = union_domain


def _materialise(
    plan: ast.NraeNode, env: Any, datum: Any, constants: Mapping[str, Any]
) -> Optional[_Relation]:
    value = _eval(plan, env, datum, constants)
    if not isinstance(value, Bag):
        raise EvalError("× expects a bag, got %r" % (value,))
    rows: List[Record] = []
    domain: Optional[FrozenSet[str]] = None
    union_domain: FrozenSet[str] = frozenset()
    for row in value:
        if not isinstance(row, Record):
            raise EvalError("× expects bags of records, got %r" % (row,))
        row_domain = frozenset(row.domain())
        domain = row_domain if domain is None else (domain & row_domain)
        union_domain = union_domain | row_domain
        rows.append(row)
    if domain is None:
        domain = frozenset()
    return _Relation(rows, domain, union_domain)


def _check(
    pred: ast.NraeNode, row: Record, env: Any, constants, env_mode: bool
) -> bool:
    if env_mode:
        if not isinstance(env, Record):
            raise EvalError("row environment requires a record env, got %r" % (env,))
        verdict = _eval(pred, env.concat(row), row, constants)
    else:
        verdict = _eval(pred, env, row, constants)
    if not isinstance(verdict, bool):
        raise EvalError("σ predicate returned non-boolean %r" % (verdict,))
    return verdict


class _Partial:
    """A partial join result: per-factor rows, keyed by factor index.

    Assembling the visible record concatenates the factor rows in
    *original factor order*, reproducing ⊕'s right bias exactly — which
    is what makes self-joins (duplicate field names across factors)
    safe.
    """

    __slots__ = ("indices", "rows")

    def __init__(self, indices: Tuple[int, ...], rows: List[Tuple[Record, ...]]):
        self.indices = indices  # sorted factor indices
        self.rows = rows        # tuples aligned with ``indices``


def _assemble(indices: Tuple[int, ...], row: Tuple[Record, ...]) -> Record:
    record = row[0]
    for part in row[1:]:
        record = record.concat(part)
    return record


def _owner_map(relations: List[_Relation]) -> Dict[str, int]:
    """field → the *last* factor providing it (⊕ favors the right)."""
    owners: Dict[str, int] = {}
    for index, relation in enumerate(relations):
        for field in relation.domain:
            owners[field] = index
    return owners


def _hoist_uncorrelated(
    pred: ast.NraeNode,
    env: Any,
    datum: Any,
    constants: Mapping[str, Any],
    env_mode: bool,
    env_domain: FrozenSet[str],
    union_fields: FrozenSet[str],
) -> Optional[ast.NraeNode]:
    """Rewrite ``lhs ∈ rhs`` to ``lhs ∈ Const(bag)`` when ``rhs`` is row-free.

    The reference evaluates the IN subquery once per candidate row;
    when :func:`_analyse_dependence` proves ``rhs`` cannot read the row
    — no visible ``In``, and in env-mode no whole-env exposure and no
    unshadowed ``Env.f`` read that the row could shadow (``f`` both in
    the outer environment and possibly provided by a factor) — its
    value is the same for every row, so it is evaluated once here.
    Reads of fields only rows provide raise on the row-free environment
    and are caught: a correlated subquery simply stays per-row.
    """
    if not (isinstance(pred, ast.Binop) and isinstance(pred.op, ops.OpIn)):
        return None
    rhs = pred.right
    if isinstance(rhs, (ast.Const, ast.ID, ast.Env)):
        return None  # already constant / trivially per-row
    info = _analyse_dependence(rhs)
    if info.reads_input:
        return None
    if env_mode:
        if info.whole_env:
            return None
        for field in info.env_reads:
            if field in env_domain and field in union_fields:
                return None  # the row may shadow an outer field: correlated
    try:
        value = _eval(rhs, env, datum, constants)
    except (EvalError, DataError):
        return None
    if not isinstance(value, Bag):
        return None
    get_metrics().counter("engine.hoisted_in").inc()
    return ast.Binop(pred.op, pred.left, ast.Const(value))


def _batch_filter(
    conjunct: _Conjunct, env_mode: bool
) -> Optional[Tuple[Path, Any, str]]:
    """(path, payload, kind) for conjuncts runnable as column filters.

    ``row.path ∈ Const(bag)`` becomes one kernel key-index probe per
    row (kind ``"in"``); ``row.path = Const(v)`` one canonical-key
    comparison (kind ``"eq"``).  Anything else stays per-row.
    """
    pred = conjunct.pred
    if conjunct.whole_row or not isinstance(pred, ast.Binop):
        return None
    if isinstance(pred.op, ops.OpIn):
        path = _row_path(pred.left, env_mode)
        if (
            path is not None
            and isinstance(pred.right, ast.Const)
            and isinstance(pred.right.value, Bag)
        ):
            return (path, kernel.key_index(pred.right.value), "in")
    if isinstance(pred.op, ops.OpEq):
        for side, other in ((pred.left, pred.right), (pred.right, pred.left)):
            path = _row_path(side, env_mode)
            if path is not None and isinstance(other, ast.Const):
                return (path, canonical_key(other.value), "eq")
    return None


def _execute_join(
    select: ast.Select, env: Any, datum: Any, constants: Mapping[str, Any]
) -> Optional[Bag]:
    """Execute ``σ⟨p⟩(q1 × … × qk)`` as a join, or None to fall back."""
    factors = _flatten_product(select.input)
    if len(factors) < 2:
        return _fallback(select, "single_factor")
    predicate = select.pred
    env_mode = False
    if (
        isinstance(predicate, ast.AppEnv)
        and isinstance(predicate.before, ast.Binop)
        and isinstance(predicate.before.op, ops.OpConcat)
        and isinstance(predicate.before.left, ast.Env)
        and isinstance(predicate.before.right, ast.ID)
    ):
        # the SQL translator's row shape: p ∘e (Env ⊕ In)
        env_mode = True
        predicate = predicate.after
        if not isinstance(env, Record):
            return _fallback(select, "env_not_record")
    conjuncts = [_Conjunct(pred, env_mode) for pred in _conjuncts(predicate)]

    relations = [_materialise(f, env, datum, constants) for f in factors]
    owners = _owner_map(relations)
    union_fields = frozenset().union(*(r.union_domain for r in relations))
    outer_fields = frozenset(env.domain()) if isinstance(env, Record) else frozenset()
    for position, conjunct in enumerate(conjuncts):
        hoisted = _hoist_uncorrelated(
            conjunct.pred, env, datum, constants, env_mode, outer_fields, union_fields
        )
        if hoisted is not None:
            # re-analyse: the Const right side frees the conjunct from
            # its whole-row classification, enabling pushdown
            conjuncts[position] = _Conjunct(hoisted, env_mode)
    for conjunct in conjuncts:
        if conjunct.whole_row:
            # runs on fully assembled rows — exactly like the reference
            continue
        for field in conjunct.fields:
            if field in owners:
                # certainly provided by a factor; but another factor
                # might sometimes provide it too (heterogeneous rows):
                if any(
                    field in relations[i].union_domain
                    and field not in relations[i].domain
                    for i in range(len(relations))
                ):
                    return _fallback(select, "ambiguous_field")
            elif env_mode and field in outer_fields and field not in union_fields:
                # an outer-environment read, constant across rows — fine
                pass
            else:
                return _fallback(select, "unresolved_field")
        if conjunct.equality is not None:
            f_path, g_path = conjunct.equality
            if f_path[0] not in owners or g_path[0] not in owners:
                conjunct.equality = None  # outer-env side: plain filter
        conjunct.batch = _batch_filter(conjunct, env_mode)

    def key_column(partial: _Partial, rows, path: Path) -> List[tuple]:
        # canonical keys of the value the full row will have: the last
        # joined factor's (readiness guarantees the global last owner is
        # joined).  One batch pass through the kernel key cache.
        position = partial.indices.index(owners[path[0]])
        try:
            return batch.path_keys([row[position] for row in rows], path)
        except DataError as exc:
            raise EvalError("join key %r: %s" % (path, exc)) from exc

    def join_resolve(path: Path):
        # a column getter over a _Partial: the owning factor's values.
        # Readiness (apply_ready) guarantees the owner is joined, and
        # ⊕'s right bias makes the last owner's value the row's value —
        # but only certainly-present fields qualify (a sometimes-absent
        # field must error per row, on exactly the rows lacking it).
        head = path[0]
        owner = owners.get(head)
        if owner is None or head not in relations[owner].domain:
            return None
        if len(path) == 1:

            def getter(partial, owner=owner, head=head):
                position = partial.indices.index(owner)
                return [row[position][head] for row in partial.rows]

            return getter
        field = path[1]

        def nested_getter(partial, owner=owner, head=head, field=field, path=path):
            position = partial.indices.index(owner)
            out = []
            for row in partial.rows:
                value = row[position][head]
                if not isinstance(value, Record):
                    raise EvalError(
                        "path %s: %r is not a record" % (".".join(path), value)
                    )
                try:
                    out.append(value[field])
                except DataError as exc:
                    raise EvalError(str(exc)) from exc
            return out

        return nested_getter

    def check_rows(partial: _Partial, conjunct: _Conjunct) -> _Partial:
        if conjunct.batch is not None and conjunct.batch[0][0] in owners:
            path, payload, kind = conjunct.batch
            keys = key_column(partial, partial.rows, path)
            if kind == "in":
                kept = batch.filter_member(partial.rows, keys, payload)
            else:
                kept = batch.filter_equal(partial.rows, keys, payload)
            return _Partial(partial.indices, kept)
        if _COLUMNAR_ENABLED and not conjunct.whole_row and partial.rows:
            entry = conjunct.columnar
            if entry is _UNSET:
                entry = _compile_mask(
                    conjunct.pred, env_mode, join_resolve, union_fields
                )
                conjunct.columnar = entry
            if entry is not None:
                is_column, verdicts = _mask_eval(
                    entry, partial, env, datum, constants
                )
                if not is_column:
                    if not isinstance(verdicts, bool):
                        raise EvalError(
                            "σ predicate returned non-boolean %r" % (verdicts,)
                        )
                    kept = list(partial.rows) if verdicts else []
                else:
                    kept = []
                    for row, verdict in zip(partial.rows, verdicts):
                        if not isinstance(verdict, bool):
                            raise EvalError(
                                "σ predicate returned non-boolean %r" % (verdict,)
                            )
                        if verdict:
                            kept.append(row)
                get_metrics().counter("engine.columnar_filter").inc()
                analyzer = _ANALYZER
                if analyzer is not None:
                    analyzer.on_columnar(select, None)
                return _Partial(partial.indices, kept)
        kept = [
            row
            for row in partial.rows
            if _check(
                conjunct.pred,
                _assemble(partial.indices, row),
                env,
                constants,
                env_mode,
            )
        ]
        return _Partial(partial.indices, kept)

    def apply_ready(partial: _Partial) -> _Partial:
        joined = set(partial.indices)
        for conjunct in conjuncts:
            if conjunct.applied:
                continue
            # A conjunct is safe once, for each *factor-owned* field it
            # reads, the field's *last* owner is joined: the partial's
            # ⊕-assembled value then equals the full row's value.
            # (Outer-environment fields are constants — always ready;
            # whole-row conjuncts wait for the complete row.)
            if conjunct.whole_row:
                ready = len(joined) == len(relations)
            else:
                ready = all(
                    owners[field] in joined
                    for field in conjunct.fields
                    if field in owners
                )
            if ready:
                partial = check_rows(partial, conjunct)
                conjunct.applied = True
        return partial

    partials: Dict[int, _Partial] = {
        index: apply_ready(
            _Partial((index,), [(row,) for row in relation.rows])
        )
        for index, relation in enumerate(relations)
    }

    def merge(left: _Partial, right: _Partial, rows) -> _Partial:
        # interleave the two index tuples, keeping original order
        indices = tuple(sorted(left.indices + right.indices))
        # mapping from combined sorted order to (side, position)
        slots = sorted(
            [(idx, 0, pos) for pos, idx in enumerate(left.indices)]
            + [(idx, 1, pos) for pos, idx in enumerate(right.indices)]
        )
        merged_rows = []
        for l_row, r_row in rows:
            sides = (l_row, r_row)
            merged_rows.append(tuple(sides[side][pos] for _, side, pos in slots))
        return _Partial(indices, merged_rows)

    def hash_join(
        left: _Partial, right: _Partial, keys: Sequence[Tuple[Path, Path]]
    ) -> _Partial:
        right_columns = [key_column(right, right.rows, g) for _, g in keys]
        index: Dict[tuple, List[Tuple[Record, ...]]] = {}
        for row, key in zip(right.rows, zip(*right_columns)):
            index.setdefault(key, []).append(row)
        left_columns = [key_column(left, left.rows, f) for f, _ in keys]
        pairs = []
        for row, key in zip(left.rows, zip(*left_columns)):
            for match in index.get(key, ()):
                pairs.append((row, match))
        return merge(left, right, pairs)

    remaining = set(partials)
    start = min(remaining, key=lambda i: len(partials[i].rows))
    current = partials[start]
    remaining.discard(start)

    while remaining:
        joined = set(current.indices)
        best_index: Optional[int] = None
        best_keys: List[Tuple[Path, Path]] = []
        for index in remaining:
            candidate = set(partials[index].indices)
            keys: List[Tuple[Path, Path]] = []
            for conjunct in conjuncts:
                if conjunct.applied or conjunct.equality is None:
                    continue
                f, g = conjunct.equality
                if owners[f[0]] in joined and owners[g[0]] in candidate:
                    keys.append((f, g))
                elif owners[g[0]] in joined and owners[f[0]] in candidate:
                    keys.append((g, f))
            if keys and (best_index is None or len(keys) > len(best_keys)):
                best_index, best_keys = index, keys
        if best_index is None:
            best_index = min(remaining, key=lambda i: len(partials[i].rows))
            other = partials[best_index]
            pairs = [(l, r) for l in current.rows for r in other.rows]
            current = merge(current, other, pairs)
        else:
            for key_pair in best_keys:
                for conjunct in conjuncts:
                    if conjunct.equality in (key_pair, (key_pair[1], key_pair[0])):
                        conjunct.applied = True
            current = hash_join(current, partials[best_index], best_keys)
        remaining.discard(best_index)
        current = apply_ready(current)

    records = [_assemble(current.indices, row) for row in current.rows]
    for conjunct in conjuncts:
        if not conjunct.applied:
            records = [
                row
                for row in records
                if _check(conjunct.pred, row, env, constants, env_mode)
            ]
    get_metrics().counter("engine.join").inc()
    analyzer = _ANALYZER
    if analyzer is not None:
        # The join consumed the factors directly (the Product node never
        # ran): report the hash-join path and the true input cardinality
        # on the Select node itself.
        analyzer.on_join(select, None)
        analyzer.add_input(select, sum(len(r.rows) for r in relations))
    return Bag(records)


# ---------------------------------------------------------------------------
# The physical group-by
# ---------------------------------------------------------------------------


def _key_record_fields(node: ast.NraeNode) -> Optional[List[Tuple[str, str]]]:
    """Parse ``[n1: In.f1] ⊕ … ⊕ [nk: In.fk]`` into ``(name, field)`` pairs.

    This is the shape :func:`repro.nraenv.builders.record` folds ``⊕``
    into for a pure field projection; pairs come back in ⊕ order, so a
    repeated output name must be resolved right-biased by the caller.
    """
    pairs: List[Tuple[str, str]] = []

    def parse(n: ast.NraeNode) -> bool:
        if isinstance(n, ast.Binop) and isinstance(n.op, ops.OpConcat):
            return parse(n.left) and parse(n.right)
        if (
            isinstance(n, ast.Unop)
            and isinstance(n.op, ops.OpRec)
            and isinstance(n.arg, ast.Unop)
            and isinstance(n.arg.op, ops.OpDot)
            and isinstance(n.arg.arg, ast.ID)
        ):
            pairs.append((n.op.field, n.arg.op.field))
            return True
        return False

    if parse(node):
        return pairs
    return None


class _GroupBy:
    """A matched derived group-by: bucket ``source`` by ``key_fields``."""

    __slots__ = ("source", "key_fields", "partition_field", "key_env_field")

    def __init__(
        self,
        source: ast.NraeNode,
        key_fields: List[Tuple[str, str]],
        partition_field: str,
        key_env_field: str,
    ):
        self.source = source
        self.key_fields = key_fields
        self.partition_field = partition_field
        self.key_env_field = key_env_field


def _is_group_candidate(plan: ast.Map) -> bool:
    """Cheap guard: the only χ shape worth running the full match on."""
    return (
        isinstance(plan.input, ast.Unop)
        and isinstance(plan.input.op, ops.OpDistinct)
        and isinstance(plan.body, ast.AppEnv)
    )


def _match_group_by(plan: ast.Map) -> Optional[_GroupBy]:
    """Match the derived group-by (paper §3.2 / ``builders.group_by``).

        χ⟨(In ⊕ [P: σ⟨K(In) = Env.G⟩(q)]) ∘e (Env ⊕ [G: In])⟩(♯distinct(χ⟨K(In)⟩(q)))

    where ``K`` is a pure field-projection record.  Purely syntactic;
    the soundness conditions on ``q`` are checked by
    :func:`_execute_group_by` (reason ``group_shape``), so a near-miss
    here counts as ``group_pattern``.
    """
    keys_map = plan.input.arg
    if not isinstance(keys_map, ast.Map):
        return None
    key_record, source = keys_map.body, keys_map.input
    pairs = _key_record_fields(key_record)
    if pairs is None:
        return None
    body = plan.body
    before = body.before
    if not (
        isinstance(before, ast.Binop)
        and isinstance(before.op, ops.OpConcat)
        and isinstance(before.left, ast.Env)
        and isinstance(before.right, ast.Unop)
        and isinstance(before.right.op, ops.OpRec)
        and isinstance(before.right.arg, ast.ID)
    ):
        return None
    key_env_field = before.right.op.field
    after = body.after
    if not (
        isinstance(after, ast.Binop)
        and isinstance(after.op, ops.OpConcat)
        and isinstance(after.left, ast.ID)
        and isinstance(after.right, ast.Unop)
        and isinstance(after.right.op, ops.OpRec)
    ):
        return None
    partition_field = after.right.op.field
    select = after.right.arg
    if not isinstance(select, ast.Select) or select.input != source:
        return None
    pred = select.pred
    if not (isinstance(pred, ast.Binop) and isinstance(pred.op, ops.OpEq)):
        return None
    env_key = ast.Unop(ops.OpDot(key_env_field), ast.Env())
    if not (
        (pred.left == key_record and pred.right == env_key)
        or (pred.right == key_record and pred.left == env_key)
    ):
        return None
    return _GroupBy(source, pairs, partition_field, key_env_field)


def _execute_group_by(
    plan: ast.Map,
    spec: _GroupBy,
    env: Any,
    datum: Any,
    constants: Mapping[str, Any],
) -> Optional[Bag]:
    """One-pass physical group-by for a matched derived encoding.

    Evaluates ``q`` once, buckets its rows by the canonical keys of the
    projected fields (the exact equality ``σ⟨K(In) = Env.G⟩`` applies,
    since record equality over fixed names is per-field canonical-key
    equality), and emits ``K(first) ⊕ [partition: bucket]`` per bucket
    in first-occurrence order (``♯distinct`` keeps first occurrences).

    Soundness: the encoding evaluates the partition's ``q`` with the
    group key as datum, under ``Env ⊕ [G: key]`` — whereas we evaluate
    ``q`` once in the *original* context.  So ``q`` must not read the
    ambient ``In``, must not read ``Env.G`` unshadowed, and must not
    expose the ambient environment whole (:func:`_analyse_dependence`).
    Returns ``None`` (after counting ``group_shape``) if that analysis
    or the runtime data shape (not a bag of records carrying every key
    field) fails.
    """
    info = _analyse_dependence(spec.source)
    if (
        info.reads_input
        or info.whole_env
        or spec.key_env_field in info.env_reads
    ):
        return _group_fallback(plan, "group_shape")
    source = _eval(spec.source, env, datum, constants)
    if not isinstance(source, Bag):
        return _group_fallback(plan, "group_shape")
    # right-biased effective key: a repeated output name keeps the last
    # source field, but the shadowed fields must still exist on every
    # row (the reference key projection reads them before ⊕ drops them)
    effective: Dict[str, str] = {}
    for name, field in spec.key_fields:
        effective[name] = field
    bucket_fields = list(effective.values())
    last = {name: i for i, (name, _) in enumerate(spec.key_fields)}
    extra = [f for i, (name, f) in enumerate(spec.key_fields) if last[name] != i]
    cb = columnar.cached_columnar(source) if _COLUMNAR_ENABLED else None
    try:
        if cb is not None and all(
            cb.has_field(f) and not cb.has_missing(f)
            for f in set(bucket_fields) | set(extra)
        ):
            # the source is already columnar (a registered dataset or a
            # fused-chain output): bucket by its cached key columns
            buckets = batch.group_rows(cb, bucket_fields)
        else:
            if extra:
                for row in source.items:
                    for field in extra:
                        kernel.field_key(row, field)
            buckets = batch.group_rows(source.items, bucket_fields)
    except DataError:
        return _group_fallback(plan, "group_shape")
    partition = spec.partition_field
    out = []
    for rows in buckets.values():
        first = rows[0]
        group = {name: first[field] for name, field in spec.key_fields}
        group[partition] = batch.partition_bag(rows)
        out.append(Record(group))
    get_metrics().counter("engine.group_by").inc()
    analyzer = _ANALYZER
    if analyzer is not None:
        analyzer.on_group(plan, None)
        analyzer.add_input(plan, len(source.items))
    return Bag(out)


# ---------------------------------------------------------------------------
# The evaluator: reference semantics + the join fast path
# ---------------------------------------------------------------------------


def _eval_plain(
    plan: ast.NraeNode, env: Any, datum: Any, constants: Mapping[str, Any]
) -> Any:
    if isinstance(plan, ast.Select) and isinstance(plan.input, ast.Product):
        result = _execute_join(plan, env, datum, constants)
        if result is not None:
            return result
    elif _COLUMNAR_ENABLED and isinstance(plan, ast.Select):
        result = _execute_fused(plan, env, datum, constants)
        if result is not None:
            return result
    # Structural recursion mirroring the reference semantics but looping
    # through this evaluator (so nested σ-× shapes also get the engine).
    if isinstance(plan, ast.App):
        return _eval(plan.after, env, _eval(plan.before, env, datum, constants), constants)
    if isinstance(plan, ast.AppEnv):
        return _eval(plan.after, _eval(plan.before, env, datum, constants), datum, constants)
    if isinstance(plan, ast.Unop):
        value = _eval(plan.arg, env, datum, constants)
        try:
            return plan.op.apply(value)
        except Exception as exc:  # DataError
            raise EvalError(str(exc)) from exc
    if isinstance(plan, ast.Binop):
        left = _eval(plan.left, env, datum, constants)
        right = _eval(plan.right, env, datum, constants)
        try:
            return plan.op.apply(left, right)
        except Exception as exc:
            raise EvalError(str(exc)) from exc
    if isinstance(plan, ast.Map):
        if _is_group_candidate(plan):
            spec = _match_group_by(plan)
            if spec is None:
                _group_fallback(plan, "group_pattern")
            else:
                result = _execute_group_by(plan, spec, env, datum, constants)
                if result is not None:
                    return result
        elif _COLUMNAR_ENABLED and isinstance(plan.input, (ast.Select, ast.Map)):
            # a χ rooting a fusable chain (projection/alias over σ stages)
            result = _execute_fused(plan, env, datum, constants)
            if result is not None:
                return result
        source = _eval(plan.input, env, datum, constants)
        if not isinstance(source, Bag):
            raise EvalError("χ expects a bag, got %r" % (source,))
        body = plan.body
        if isinstance(body, ast.Unop) and isinstance(body.arg, ast.ID):
            # batch map: a pure unary over the row needs no dispatch
            try:
                return Bag([body.op.apply(item) for item in source.items])
            except DataError as exc:
                raise EvalError(str(exc)) from exc
        projection = _key_record_fields(body)
        if projection is not None:
            try:
                return Bag(batch.project_records(source.items, projection))
            except DataError as exc:
                raise EvalError(str(exc)) from exc
        return Bag(_eval(plan.body, env, item, constants) for item in source)
    if isinstance(plan, ast.Select):
        source = _eval(plan.input, env, datum, constants)
        if not isinstance(source, Bag):
            raise EvalError("σ expects a bag, got %r" % (source,))
        kept = []
        for item in source:
            verdict = _eval(plan.pred, env, item, constants)
            if not isinstance(verdict, bool):
                raise EvalError("σ predicate returned non-boolean %r" % (verdict,))
            if verdict:
                kept.append(item)
        return Bag(kept)
    if isinstance(plan, ast.Product):
        left = _eval(plan.left, env, datum, constants)
        if not isinstance(left, Bag):
            raise EvalError("× expects a bag, got %r" % (left,))
        if not left:
            return Bag([])
        right = _eval(plan.right, env, datum, constants)
        if not isinstance(right, Bag):
            raise EvalError("× expects a bag, got %r" % (right,))
        return _product(left, right)
    if isinstance(plan, ast.DepJoin):
        source = _eval(plan.input, env, datum, constants)
        if not isinstance(source, Bag):
            raise EvalError("⋈d expects a bag, got %r" % (source,))
        out = []
        for item in source:
            dependent = _eval(plan.body, env, item, constants)
            if not isinstance(dependent, Bag):
                raise EvalError("⋈d body expects a bag, got %r" % (dependent,))
            out.extend(_product(Bag([item]), dependent).items)
        return Bag(out)
    if isinstance(plan, ast.Default):
        left = _eval(plan.left, env, datum, constants)
        if isinstance(left, Bag) and not left:
            return _eval(plan.right, env, datum, constants)
        return left
    if isinstance(plan, ast.MapEnv):
        if not isinstance(env, Bag):
            raise EvalError("χe requires a bag environment, got %r" % (env,))
        return Bag(_eval(plan.body, item, datum, constants) for item in env)
    # leaves: delegate to the reference evaluator
    return eval_nraenv(plan, env, datum, constants)


def _eval_analyzed(
    plan: ast.NraeNode, env: Any, datum: Any, constants: Mapping[str, Any]
) -> Any:
    """The dispatcher installed by :func:`set_analyzer`: times every node."""
    analyzer = _ANALYZER
    stats = analyzer.enter(plan)
    start = time.perf_counter()
    try:
        result = _eval_plain(plan, env, datum, constants)
    except BaseException:
        analyzer.exit_error(stats, time.perf_counter() - start)
        raise
    analyzer.exit(stats, time.perf_counter() - start, result)
    return result


#: The active dispatcher; rebound by :func:`set_analyzer`.
_eval = _eval_plain


def _product(left: Bag, right: Bag) -> Bag:
    try:
        return kernel.product(left, right)
    except DataError as exc:
        raise EvalError(str(exc)) from exc
