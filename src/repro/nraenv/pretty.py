"""Pretty-printer for NRAe plans, in the paper's notation.

``χ⟨Env.p.addr ∘e [p:In]⟩(P)`` prints exactly in that style, which makes
test failures and optimizer traces directly comparable with the paper's
figures.
"""

from __future__ import annotations

from repro.data import operators as ops
from repro.nraenv import ast


def pretty(plan: ast.NraeNode) -> str:
    """Render a plan as a single-line string in paper notation."""
    if isinstance(plan, ast.Const):
        return _value(plan.value)
    if isinstance(plan, ast.ID):
        return "In"
    if isinstance(plan, ast.Env):
        return "Env"
    if isinstance(plan, ast.GetConstant):
        return "$%s" % plan.cname
    if isinstance(plan, ast.App):
        return "(%s ∘ %s)" % (pretty(plan.after), pretty(plan.before))
    if isinstance(plan, ast.AppEnv):
        return "(%s ∘e %s)" % (pretty(plan.after), pretty(plan.before))
    if isinstance(plan, ast.Unop):
        return _unop(plan)
    if isinstance(plan, ast.Binop):
        return _binop(plan)
    if isinstance(plan, ast.Map):
        return "χ⟨%s⟩(%s)" % (pretty(plan.body), pretty(plan.input))
    if isinstance(plan, ast.MapEnv):
        return "χe⟨%s⟩" % pretty(plan.body)
    if isinstance(plan, ast.Select):
        return "σ⟨%s⟩(%s)" % (pretty(plan.pred), pretty(plan.input))
    if isinstance(plan, ast.Product):
        return "(%s × %s)" % (pretty(plan.left), pretty(plan.right))
    if isinstance(plan, ast.DepJoin):
        return "⋈d⟨%s⟩(%s)" % (pretty(plan.body), pretty(plan.input))
    if isinstance(plan, ast.Default):
        return "(%s || %s)" % (pretty(plan.left), pretty(plan.right))
    return "<%s>" % type(plan).__name__


_BINOP_SYMBOLS = {
    ops.OpEq: "=",
    ops.OpIn: "∈",
    ops.OpUnion: "∪",
    ops.OpConcat: "⊕",
    ops.OpMergeConcat: "⊗",
    ops.OpBagDiff: "\\",
    ops.OpBagInter: "∩",
    ops.OpLt: "<",
    ops.OpLe: "<=",
    ops.OpGt: ">",
    ops.OpGe: ">=",
    ops.OpAnd: "∧",
    ops.OpOr: "∨",
    ops.OpAdd: "+",
    ops.OpSub: "-",
    ops.OpMult: "*",
    ops.OpDiv: "/",
    ops.OpStrConcat: "++",
}


def _binop(plan: ast.Binop) -> str:
    symbol = _BINOP_SYMBOLS.get(type(plan.op))
    left, right = pretty(plan.left), pretty(plan.right)
    if symbol is not None:
        return "(%s %s %s)" % (left, symbol, right)
    return "%s(%s, %s)" % (plan.op.name, left, right)


def _unop(plan: ast.Unop) -> str:
    op = plan.op
    arg = pretty(plan.arg)
    if isinstance(op, ops.OpIdentity):
        return "ident(%s)" % arg
    if isinstance(op, ops.OpNeg):
        return "¬%s" % arg
    if isinstance(op, ops.OpBag):
        return "{%s}" % arg
    if isinstance(op, ops.OpFlatten):
        return "flatten(%s)" % arg
    if isinstance(op, ops.OpRec):
        return "[%s:%s]" % (op.field, arg)
    if isinstance(op, ops.OpDot):
        return "%s.%s" % (arg, op.field)
    if isinstance(op, ops.OpRemove):
        return "(%s − %s)" % (arg, op.field)
    if isinstance(op, ops.OpProject):
        return "π[%s](%s)" % (",".join(op.fields), arg)
    if isinstance(op, ops.OpDistinct):
        return "♯distinct(%s)" % arg
    return "%s(%s)" % (op.name, arg)


def _value(value: object) -> str:
    from repro.data.model import Bag, Record

    if isinstance(value, Bag):
        return "{%s}" % ", ".join(_value(v) for v in value)
    if isinstance(value, Record):
        return "[%s]" % ", ".join("%s:%s" % (k, _value(v)) for k, v in value.fields)
    if isinstance(value, str):
        return '"%s"' % value
    if value is True:
        return "true"
    if value is False:
        return "false"
    if value is None:
        return "null"
    return repr(value)
