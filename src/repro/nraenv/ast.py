"""Abstract syntax for NRAe, the combinator NRA with environments.

Paper, Definition 2::

    q ::= d | In | q2 ∘ q1 | ⊙ q | q1 ⊡ q2 | χ⟨q2⟩(q1)
        | σ⟨q2⟩(q1) | q1 × q2 | ⋈d⟨q2⟩(q1) | q1 || q2        (NRA, Def. 1)
        | Env | q2 ∘e q1 | χe⟨q⟩                              (the extension)

plus ``GetConstant(name)`` for access to named database constants
(tables).  The paper's examples write a table simply as ``P``; in
Q*cert this is the "constant environment" (``cNRAEnvGetConstant``),
kept separate from ``Env`` so that environment manipulation by views
and lambdas cannot shadow the database by accident.

The *same* node classes serve both NRA and NRAe: the paper defines
``NRA(q)`` as the predicate "q uses none of the new operators", and
:func:`is_nra` implements exactly that.  :mod:`repro.nra` exposes the
NRA view of this syntax with its own (environment-free) semantics.

Nodes are immutable and structurally comparable/hashable, which is what
the rewrite engine pattern-matches on.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterator, Tuple

from repro.data.model import is_value
from repro.data.operators import BinaryOp, UnaryOp


class NraeNode:
    """Base class for NRAe plan nodes."""

    __slots__ = ()

    def children(self) -> Tuple["NraeNode", ...]:
        """Sub-plans, left to right."""
        raise NotImplementedError

    def rebuild(self, children: Tuple["NraeNode", ...]) -> "NraeNode":
        """A copy of this node with its sub-plans replaced."""
        raise NotImplementedError

    def _tag(self) -> Tuple[Any, ...]:
        """Node identity beyond children (operator payloads, constants)."""
        return (type(self).__name__,)

    # -- structural equality ------------------------------------------------

    def __eq__(self, other: Any) -> bool:
        if type(self) is not type(other):
            return NotImplemented if not isinstance(other, NraeNode) else False
        return self._tag() == other._tag() and self.children() == other.children()

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((self._tag(), self.children()))

    def __repr__(self) -> str:
        from repro.nraenv.pretty import pretty

        return pretty(self)

    # -- metrics (the quantities Figures 7-9 report) -------------------------

    def size(self) -> int:
        """Number of operators in the plan (paper's "query size")."""
        return 1 + sum(child.size() for child in self.children())

    def depth(self) -> int:
        """Operator nesting depth of the plan (paper's "query depth").

        Mirrors the paper's notion of depth as the level of *iterator*
        nesting: dependent constructs (map/select/dep-join bodies and
        the χe body) add a level; plain composition does not.
        """
        raise NotImplementedError

    # -- traversal helpers ----------------------------------------------------

    def walk(self) -> Iterator["NraeNode"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            for node in child.walk():
                yield node

    def transform_bottom_up(
        self, fn: Callable[["NraeNode"], "NraeNode"]
    ) -> "NraeNode":
        """Rebuild the plan applying ``fn`` to every node, children first."""
        children = self.children()
        new_children = tuple(child.transform_bottom_up(fn) for child in children)
        # Identity (not structural) comparison: untouched subtrees come
        # back as the same objects, so an unchanged node costs O(arity)
        # — map(is_, …) keeps the check at C speed with no deep fallback.
        node = self if all(map(operator.is_, new_children, children)) else self.rebuild(new_children)
        return fn(node)


def _max_child_depth(node: NraeNode) -> int:
    depths = [child.depth() for child in node.children()]
    return max(depths) if depths else 0


class Const(NraeNode):
    """``d``: a constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        assert is_value(value), "Const requires a data-model value: %r" % (value,)
        self.value = value

    def children(self) -> Tuple[NraeNode, ...]:
        return ()

    def rebuild(self, children: Tuple[NraeNode, ...]) -> NraeNode:
        return self

    def _tag(self) -> Tuple[Any, ...]:
        from repro.data.model import canonical_key

        return ("Const", canonical_key(self.value))

    def depth(self) -> int:
        return 0


class ID(NraeNode):
    """``In``: the implicit input value."""

    __slots__ = ()

    def children(self) -> Tuple[NraeNode, ...]:
        return ()

    def rebuild(self, children: Tuple[NraeNode, ...]) -> NraeNode:
        return self

    def depth(self) -> int:
        return 0


class GetConstant(NraeNode):
    """Access to a named database constant (a table)."""

    __slots__ = ("cname",)

    def __init__(self, cname: str):
        self.cname = cname

    def children(self) -> Tuple[NraeNode, ...]:
        return ()

    def rebuild(self, children: Tuple[NraeNode, ...]) -> NraeNode:
        return self

    def _tag(self) -> Tuple[Any, ...]:
        return ("GetConstant", self.cname)

    def depth(self) -> int:
        return 0


class App(NraeNode):
    """``q2 ∘ q1``: evaluate ``q2`` with the result of ``q1`` as input."""

    __slots__ = ("after", "before")

    def __init__(self, after: NraeNode, before: NraeNode):
        self.after = after
        self.before = before

    def children(self) -> Tuple[NraeNode, ...]:
        return (self.after, self.before)

    def rebuild(self, children: Tuple[NraeNode, ...]) -> NraeNode:
        return App(*children)

    def depth(self) -> int:
        return _max_child_depth(self)


class Unop(NraeNode):
    """``⊙ q``: apply a unary data operator to the result of ``q``."""

    __slots__ = ("op", "arg")

    def __init__(self, op: UnaryOp, arg: NraeNode):
        self.op = op
        self.arg = arg

    def children(self) -> Tuple[NraeNode, ...]:
        return (self.arg,)

    def rebuild(self, children: Tuple[NraeNode, ...]) -> NraeNode:
        return Unop(self.op, children[0])

    def _tag(self) -> Tuple[Any, ...]:
        return ("Unop", self.op)

    def depth(self) -> int:
        return _max_child_depth(self)


class Binop(NraeNode):
    """``q1 ⊡ q2``: apply a binary data operator to two results."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: BinaryOp, left: NraeNode, right: NraeNode):
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Tuple[NraeNode, ...]:
        return (self.left, self.right)

    def rebuild(self, children: Tuple[NraeNode, ...]) -> NraeNode:
        return Binop(self.op, *children)

    def _tag(self) -> Tuple[Any, ...]:
        return ("Binop", self.op)

    def depth(self) -> int:
        return _max_child_depth(self)


class Map(NraeNode):
    """``χ⟨body⟩(input)``: map ``body`` over the bag produced by ``input``."""

    __slots__ = ("body", "input")

    def __init__(self, body: NraeNode, input: NraeNode):
        self.body = body
        self.input = input

    def children(self) -> Tuple[NraeNode, ...]:
        return (self.body, self.input)

    def rebuild(self, children: Tuple[NraeNode, ...]) -> NraeNode:
        return Map(*children)

    def depth(self) -> int:
        return max(1 + self.body.depth(), self.input.depth())


class Select(NraeNode):
    """``σ⟨pred⟩(input)``: keep elements on which ``pred`` is true."""

    __slots__ = ("pred", "input")

    def __init__(self, pred: NraeNode, input: NraeNode):
        self.pred = pred
        self.input = input

    def children(self) -> Tuple[NraeNode, ...]:
        return (self.pred, self.input)

    def rebuild(self, children: Tuple[NraeNode, ...]) -> NraeNode:
        return Select(*children)

    def depth(self) -> int:
        return max(1 + self.pred.depth(), self.input.depth())


class Product(NraeNode):
    """``q1 × q2``: Cartesian product of two bags of records (⊕ pairwise)."""

    __slots__ = ("left", "right")

    def __init__(self, left: NraeNode, right: NraeNode):
        self.left = left
        self.right = right

    def children(self) -> Tuple[NraeNode, ...]:
        return (self.left, self.right)

    def rebuild(self, children: Tuple[NraeNode, ...]) -> NraeNode:
        return Product(*children)

    def depth(self) -> int:
        return _max_child_depth(self)


class DepJoin(NraeNode):
    """``⋈d⟨body⟩(input)``: dependent join.

    For each record ``d1`` of ``input``, evaluate ``body`` with input
    ``d1`` and pair ``d1`` with every record it returns (⊕).
    """

    __slots__ = ("body", "input")

    def __init__(self, body: NraeNode, input: NraeNode):
        self.body = body
        self.input = input

    def children(self) -> Tuple[NraeNode, ...]:
        return (self.body, self.input)

    def rebuild(self, children: Tuple[NraeNode, ...]) -> NraeNode:
        return DepJoin(*children)

    def depth(self) -> int:
        return max(1 + self.body.depth(), self.input.depth())


class Default(NraeNode):
    """``q1 || q2``: value of ``q1`` unless it is ∅, else value of ``q2``."""

    __slots__ = ("left", "right")

    def __init__(self, left: NraeNode, right: NraeNode):
        self.left = left
        self.right = right

    def children(self) -> Tuple[NraeNode, ...]:
        return (self.left, self.right)

    def rebuild(self, children: Tuple[NraeNode, ...]) -> NraeNode:
        return Default(*children)

    def depth(self) -> int:
        return _max_child_depth(self)


class Env(NraeNode):
    """``Env``: the implicit reified environment."""

    __slots__ = ()

    def children(self) -> Tuple[NraeNode, ...]:
        return ()

    def rebuild(self, children: Tuple[NraeNode, ...]) -> NraeNode:
        return self

    def depth(self) -> int:
        return 0


class AppEnv(NraeNode):
    """``q2 ∘e q1``: evaluate ``q2`` with environment set by ``q1``."""

    __slots__ = ("after", "before")

    def __init__(self, after: NraeNode, before: NraeNode):
        self.after = after
        self.before = before

    def children(self) -> Tuple[NraeNode, ...]:
        return (self.after, self.before)

    def rebuild(self, children: Tuple[NraeNode, ...]) -> NraeNode:
        return AppEnv(*children)

    def depth(self) -> int:
        return _max_child_depth(self)


class MapEnv(NraeNode):
    """``χe⟨body⟩``: map ``body`` over the bag in the environment."""

    __slots__ = ("body",)

    def __init__(self, body: NraeNode):
        self.body = body

    def children(self) -> Tuple[NraeNode, ...]:
        return (self.body,)

    def rebuild(self, children: Tuple[NraeNode, ...]) -> NraeNode:
        return MapEnv(children[0])

    def depth(self) -> int:
        return 1 + self.body.depth()


#: Node classes belonging to the NRA fragment (Definition 1 + GetConstant).
NRA_NODE_TYPES = (
    Const,
    ID,
    GetConstant,
    App,
    Unop,
    Binop,
    Map,
    Select,
    Product,
    DepJoin,
    Default,
)

#: The environment extension (Definition 2).
ENV_NODE_TYPES = (Env, AppEnv, MapEnv)


def is_nra(plan: NraeNode) -> bool:
    """The paper's ``NRA(q)``: q uses none of the environment operators."""
    return all(not isinstance(node, ENV_NODE_TYPES) for node in plan.walk())


# ---------------------------------------------------------------------------
# Derived operators (paper section 3.2)
# ---------------------------------------------------------------------------


def project(fields: Any, plan: NraeNode) -> NraeNode:
    """Relational projection ``Π_{Ai}(q) = χ⟨π_{Ai}⟩(q)``."""
    from repro.data.operators import OpProject

    return Map(Unop(OpProject(fields), ID()), plan)


def unnest(b: str, a: str, plan: NraeNode) -> NraeNode:
    """``ρ_{B/{A}}(q)``: unnest the bag under attribute A into field B.

    Defined (paper section 3.2) as::

        ρ_{B/{A}}(q) = χ⟨In−A⟩( ⋈d⟨χ⟨[B:In]⟩(In.A)⟩(q) )
    """
    from repro.data.operators import OpDot, OpRec, OpRemove

    inner = Map(Unop(OpRec(b), ID()), Unop(OpDot(a), ID()))
    return Map(Unop(OpRemove(a), ID()), DepJoin(inner, plan))
