"""Concise constructors for NRAe plans.

Translations and tests build a lot of algebra; these helpers keep that
code close to the paper's notation::

    chi(dot(env(), "p"), P)          # χ⟨Env.p⟩(P)
    appenv(q, concat(env(), rec_field("x", id_())))   # q ∘e (Env ⊕ [x:In])
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Tuple

from repro.data import operators as ops
from repro.nraenv import ast


def const(value: Any) -> ast.Const:
    return ast.Const(value)


def id_() -> ast.ID:
    return ast.ID()


def env() -> ast.Env:
    return ast.Env()


def table(name: str) -> ast.GetConstant:
    return ast.GetConstant(name)


def comp(after: ast.NraeNode, before: ast.NraeNode) -> ast.App:
    """``after ∘ before``."""
    return ast.App(after, before)


def appenv(after: ast.NraeNode, before: ast.NraeNode) -> ast.AppEnv:
    """``after ∘e before``."""
    return ast.AppEnv(after, before)


def chi(body: ast.NraeNode, input: ast.NraeNode) -> ast.Map:
    """``χ⟨body⟩(input)``."""
    return ast.Map(body, input)


def chie(body: ast.NraeNode) -> ast.MapEnv:
    """``χe⟨body⟩``."""
    return ast.MapEnv(body)


def sigma(pred: ast.NraeNode, input: ast.NraeNode) -> ast.Select:
    """``σ⟨pred⟩(input)``."""
    return ast.Select(pred, input)


def product(left: ast.NraeNode, right: ast.NraeNode) -> ast.Product:
    return ast.Product(left, right)


def djoin(body: ast.NraeNode, input: ast.NraeNode) -> ast.DepJoin:
    """``⋈d⟨body⟩(input)``."""
    return ast.DepJoin(body, input)


def default(left: ast.NraeNode, right: ast.NraeNode) -> ast.Default:
    """``left || right``."""
    return ast.Default(left, right)


def unop(op: ops.UnaryOp, arg: ast.NraeNode) -> ast.Unop:
    return ast.Unop(op, arg)


def binop(op: ops.BinaryOp, left: ast.NraeNode, right: ast.NraeNode) -> ast.Binop:
    return ast.Binop(op, left, right)


# -- unary shorthands -------------------------------------------------------


def dot(plan: ast.NraeNode, field: str) -> ast.Unop:
    """``plan.field``."""
    return ast.Unop(ops.OpDot(field), plan)


def dots(plan: ast.NraeNode, *fields: str) -> ast.NraeNode:
    """``plan.f1.f2...``."""
    for field in fields:
        plan = dot(plan, field)
    return plan


def rec_field(field: str, plan: ast.NraeNode) -> ast.Unop:
    """``[field: plan]``."""
    return ast.Unop(ops.OpRec(field), plan)


def record(fields: Mapping[str, ast.NraeNode]) -> ast.NraeNode:
    """``[A1: q1, ..., An: qn]`` via ⊕ of one-field records."""
    items: Tuple[Tuple[str, ast.NraeNode], ...] = tuple(fields.items())
    if not items:
        from repro.data.model import Record

        return ast.Const(Record({}))
    plan: ast.NraeNode = rec_field(items[0][0], items[0][1])
    for name, sub in items[1:]:
        plan = concat(plan, rec_field(name, sub))
    return plan


def coll(plan: ast.NraeNode) -> ast.Unop:
    """``{plan}``: singleton bag."""
    return ast.Unop(ops.OpBag(), plan)


def flatten_(plan: ast.NraeNode) -> ast.Unop:
    return ast.Unop(ops.OpFlatten(), plan)


def neg(plan: ast.NraeNode) -> ast.Unop:
    return ast.Unop(ops.OpNeg(), plan)


def remove(plan: ast.NraeNode, field: str) -> ast.Unop:
    return ast.Unop(ops.OpRemove(field), plan)


def distinct(plan: ast.NraeNode) -> ast.Unop:
    return ast.Unop(ops.OpDistinct(), plan)


def count(plan: ast.NraeNode) -> ast.Unop:
    return ast.Unop(ops.OpCount(), plan)


def elem(plan: ast.NraeNode) -> ast.Unop:
    """Extract the element of a singleton bag."""
    return ast.Unop(ops.OpSingleton(), plan)


# -- binary shorthands ------------------------------------------------------


def eq(left: ast.NraeNode, right: ast.NraeNode) -> ast.Binop:
    return ast.Binop(ops.OpEq(), left, right)


def member(left: ast.NraeNode, right: ast.NraeNode) -> ast.Binop:
    """``left ∈ right``."""
    return ast.Binop(ops.OpIn(), left, right)


def union(left: ast.NraeNode, right: ast.NraeNode) -> ast.Binop:
    return ast.Binop(ops.OpUnion(), left, right)


def concat(left: ast.NraeNode, right: ast.NraeNode) -> ast.Binop:
    """``left ⊕ right``."""
    return ast.Binop(ops.OpConcat(), left, right)


def merge(left: ast.NraeNode, right: ast.NraeNode) -> ast.Binop:
    """``left ⊗ right``."""
    return ast.Binop(ops.OpMergeConcat(), left, right)


def and_(left: ast.NraeNode, right: ast.NraeNode) -> ast.Binop:
    return ast.Binop(ops.OpAnd(), left, right)


def or_(left: ast.NraeNode, right: ast.NraeNode) -> ast.Binop:
    return ast.Binop(ops.OpOr(), left, right)


def lt(left: ast.NraeNode, right: ast.NraeNode) -> ast.Binop:
    return ast.Binop(ops.OpLt(), left, right)


def gt(left: ast.NraeNode, right: ast.NraeNode) -> ast.Binop:
    return ast.Binop(ops.OpGt(), left, right)


def add(left: ast.NraeNode, right: ast.NraeNode) -> ast.Binop:
    return ast.Binop(ops.OpAdd(), left, right)


def group_by(
    key_fields: Iterable[str],
    plan: ast.NraeNode,
    partition_field: str = "partition",
    key_env_field: str = "__key",
) -> ast.NraeNode:
    """Group a bag of records by field values (paper §3.2's derived group-by).

    Produces one record per distinct key: the key fields plus
    ``partition_field`` holding the bag of matching rows.  The encoding
    showcases the environment: the group key is stashed under
    ``key_env_field`` (``∘e (Env ⊕ [__key: In])``) so the partition's
    selection can compare row keys against it without a dependent join::

        χ⟨(In ⊕ [partition: σ⟨key(In) = Env.__key⟩(q)]) ∘e (Env ⊕ [__key: In])⟩(
            ♯distinct(χ⟨key(In)⟩(q)) )
    """
    fields = list(key_fields)
    if not fields:
        return coll(rec_field(partition_field, plan))
    key_record = record({name: dot(id_(), name) for name in fields})
    groups = distinct(chi(key_record, plan))
    partition = sigma(eq(key_record, dot(env(), key_env_field)), plan)
    body = appenv(
        concat(id_(), rec_field(partition_field, partition)),
        concat(env(), rec_field(key_env_field, id_())),
    )
    return chi(body, groups)


def if_then_else(
    cond: ast.NraeNode, then: ast.NraeNode, otherwise: ast.NraeNode
) -> ast.NraeNode:
    """Conditional, encoded in the core algebra (used by SQL CASE).

    ::

        elem( χ⟨then ∘ In.d⟩( σ⟨In.c⟩( {[c: cond, d: In]} ) ) || {otherwise} )

    The original input is stashed under field ``d`` so the ``then``
    branch runs against it; ``||`` only evaluates its right operand when
    the left one is ∅ (rule Default∅), so the untaken branch is never
    evaluated — exactly SQL CASE's laziness.  Note ``{∅} ≠ ∅``: a taken
    then-branch that *returns* an empty bag still suppresses the else.
    """
    pair = coll(record({"c": cond, "d": id_()}))
    taken = chi(comp(then, dot(id_(), "d")), sigma(dot(id_(), "c"), pair))
    return elem(default(taken, coll(otherwise)))
