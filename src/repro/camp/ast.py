"""Abstract syntax for CAMP (paper §7).

The Calculus for Aggregating Matching Patterns::

    p ::= d | ⊙p | p1 ⊡ p2 | it | env | let it = p1 in p2
        | let env += p1 in p2 | map p | assert p | p1 || p2

plus ``PGetConstant`` for access to named database constants (the
working memory / "WORLD" of the rule language), matching Q*cert's CAMP.

A pattern evaluates against an implicit datum (``it``) and an
environment of bindings (``env``); evaluation may *fail recoverably*
(match failure) — ``map`` collects only the successes and ``||``
recovers from failure.  ``let env += p`` *unifies* the bindings computed
by ``p`` with the current environment (⊗ semantics), the feature the
paper highlights as awkward for lambda-based representations.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Tuple

from repro.data.model import is_value
from repro.data.operators import BinaryOp, UnaryOp


class CampNode:
    """Base class for CAMP patterns."""

    __slots__ = ()

    def children(self) -> Tuple["CampNode", ...]:
        raise NotImplementedError

    def rebuild(self, children: Tuple["CampNode", ...]) -> "CampNode":
        raise NotImplementedError

    def _tag(self) -> Tuple[Any, ...]:
        return (type(self).__name__,)

    def __eq__(self, other: Any) -> bool:
        if type(self) is not type(other):
            return NotImplemented if not isinstance(other, CampNode) else False
        return self._tag() == other._tag() and self.children() == other.children()

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((self._tag(), self.children()))

    def __repr__(self) -> str:
        from repro.camp.pretty import pretty

        return pretty(self)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children())

    def walk(self) -> Iterator["CampNode"]:
        yield self
        for child in self.children():
            for node in child.walk():
                yield node


class PConst(CampNode):
    """``d``: a constant pattern (always matches, returns ``d``)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        assert is_value(value), "PConst requires a data-model value: %r" % (value,)
        self.value = value

    def children(self) -> Tuple[CampNode, ...]:
        return ()

    def rebuild(self, children: Tuple[CampNode, ...]) -> CampNode:
        return self

    def _tag(self) -> Tuple[Any, ...]:
        from repro.data.model import canonical_key

        return ("PConst", canonical_key(self.value))


class PUnop(CampNode):
    """``⊙ p``."""

    __slots__ = ("op", "arg")

    def __init__(self, op: UnaryOp, arg: CampNode):
        self.op = op
        self.arg = arg

    def children(self) -> Tuple[CampNode, ...]:
        return (self.arg,)

    def rebuild(self, children: Tuple[CampNode, ...]) -> CampNode:
        return PUnop(self.op, children[0])

    def _tag(self) -> Tuple[Any, ...]:
        return ("PUnop", self.op)


class PBinop(CampNode):
    """``p1 ⊡ p2``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: BinaryOp, left: CampNode, right: CampNode):
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Tuple[CampNode, ...]:
        return (self.left, self.right)

    def rebuild(self, children: Tuple[CampNode, ...]) -> CampNode:
        return PBinop(self.op, *children)

    def _tag(self) -> Tuple[Any, ...]:
        return ("PBinop", self.op)


class PIt(CampNode):
    """``it``: the implicit datum being matched."""

    __slots__ = ()

    def children(self) -> Tuple[CampNode, ...]:
        return ()

    def rebuild(self, children: Tuple[CampNode, ...]) -> CampNode:
        return self


class PEnv(CampNode):
    """``env``: the current binding environment (a record)."""

    __slots__ = ()

    def children(self) -> Tuple[CampNode, ...]:
        return ()

    def rebuild(self, children: Tuple[CampNode, ...]) -> CampNode:
        return self


class PLetIt(CampNode):
    """``let it = defn in body``: rebind the implicit datum."""

    __slots__ = ("defn", "body")

    def __init__(self, defn: CampNode, body: CampNode):
        self.defn = defn
        self.body = body

    def children(self) -> Tuple[CampNode, ...]:
        return (self.defn, self.body)

    def rebuild(self, children: Tuple[CampNode, ...]) -> CampNode:
        return PLetIt(*children)


class PLetEnv(CampNode):
    """``let env += defn in body``: unify new bindings into ``env``.

    ``defn`` must produce a record; if it is incompatible with the
    current environment (⊗ fails) the whole pattern fails recoverably.
    """

    __slots__ = ("defn", "body")

    def __init__(self, defn: CampNode, body: CampNode):
        self.defn = defn
        self.body = body

    def children(self) -> Tuple[CampNode, ...]:
        return (self.defn, self.body)

    def rebuild(self, children: Tuple[CampNode, ...]) -> CampNode:
        return PLetEnv(*children)


class PMap(CampNode):
    """``map p``: match ``p`` against each element of ``it`` (a bag).

    Collects the successes; element-level match failures are dropped,
    so ``map`` itself never fails.
    """

    __slots__ = ("body",)

    def __init__(self, body: CampNode):
        self.body = body

    def children(self) -> Tuple[CampNode, ...]:
        return (self.body,)

    def rebuild(self, children: Tuple[CampNode, ...]) -> CampNode:
        return PMap(children[0])


class PAssert(CampNode):
    """``assert p``: fail unless ``p`` matches and returns true.

    On success returns the empty record ``[]``.
    """

    __slots__ = ("body",)

    def __init__(self, body: CampNode):
        self.body = body

    def children(self) -> Tuple[CampNode, ...]:
        return (self.body,)

    def rebuild(self, children: Tuple[CampNode, ...]) -> CampNode:
        return PAssert(children[0])


class POrElse(CampNode):
    """``p1 || p2``: recover from match failure of ``p1`` with ``p2``."""

    __slots__ = ("left", "right")

    def __init__(self, left: CampNode, right: CampNode):
        self.left = left
        self.right = right

    def children(self) -> Tuple[CampNode, ...]:
        return (self.left, self.right)

    def rebuild(self, children: Tuple[CampNode, ...]) -> CampNode:
        return POrElse(*children)


class PGetConstant(CampNode):
    """Access to a named database constant (e.g. the WORLD bag)."""

    __slots__ = ("cname",)

    def __init__(self, cname: str):
        self.cname = cname

    def children(self) -> Tuple[CampNode, ...]:
        return ()

    def rebuild(self, children: Tuple[CampNode, ...]) -> CampNode:
        return self

    def _tag(self) -> Tuple[Any, ...]:
        return ("PGetConstant", self.cname)
