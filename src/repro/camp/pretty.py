"""Pretty-printer for CAMP patterns."""

from __future__ import annotations

from repro.camp import ast
from repro.nraenv.pretty import _BINOP_SYMBOLS, _value


def pretty(pattern: ast.CampNode) -> str:
    if isinstance(pattern, ast.PConst):
        return _value(pattern.value)
    if isinstance(pattern, ast.PIt):
        return "it"
    if isinstance(pattern, ast.PEnv):
        return "env"
    if isinstance(pattern, ast.PGetConstant):
        return "$%s" % pattern.cname
    if isinstance(pattern, ast.PUnop):
        from repro.data import operators as ops

        if isinstance(pattern.op, ops.OpDot):
            return "%s.%s" % (pretty(pattern.arg), pattern.op.field)
        return "%s(%s)" % (pattern.op.name, pretty(pattern.arg))
    if isinstance(pattern, ast.PBinop):
        symbol = _BINOP_SYMBOLS.get(type(pattern.op), pattern.op.name)
        return "(%s %s %s)" % (pretty(pattern.left), symbol, pretty(pattern.right))
    if isinstance(pattern, ast.PLetIt):
        return "let it = %s in %s" % (pretty(pattern.defn), pretty(pattern.body))
    if isinstance(pattern, ast.PLetEnv):
        return "let env += %s in %s" % (pretty(pattern.defn), pretty(pattern.body))
    if isinstance(pattern, ast.PMap):
        return "map %s" % pretty(pattern.body)
    if isinstance(pattern, ast.PAssert):
        return "assert %s" % pretty(pattern.body)
    if isinstance(pattern, ast.POrElse):
        return "(%s || %s)" % (pretty(pattern.left), pretty(pattern.right))
    return "<%s>" % type(pattern).__name__
