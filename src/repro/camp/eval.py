"""Operational semantics of CAMP ([34]; paper §7 gives the intuition).

Evaluation is against an implicit datum ``it`` and a binding
environment ``env`` (a record).  Two failure modes are distinguished:

- :class:`MatchFail` — *recoverable* match failure: ``map`` drops the
  element, ``||`` falls through to its right operand, failed unification
  in ``let env +=`` raises it;
- :class:`~repro.nraenv.eval.EvalError` — terminal error (ill-shaped
  data), which is never recovered.

This mirrors the paper's translation invariant: translated patterns
return ∅ for a recoverable failure and ``{v}`` for success.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.camp import ast
from repro.data.model import Bag, DataError, Record
from repro.nraenv.eval import EvalError


class MatchFail(Exception):
    """Recoverable match failure (the ∅ of the translation)."""


def eval_camp(
    pattern: ast.CampNode,
    datum: Any = None,
    env: Optional[Record] = None,
    constants: Optional[Mapping[str, Any]] = None,
) -> Any:
    """Evaluate ``pattern`` against ``datum`` with bindings ``env``.

    Raises :class:`MatchFail` on recoverable failure.
    """
    if env is None:
        env = Record({})
    return _eval(pattern, datum, env, constants or {})


def matches(
    pattern: ast.CampNode,
    datum: Any = None,
    env: Optional[Record] = None,
    constants: Optional[Mapping[str, Any]] = None,
) -> Optional[Any]:
    """Like :func:`eval_camp` but returns None on match failure."""
    try:
        return eval_camp(pattern, datum, env, constants)
    except MatchFail:
        return None


def _eval(pattern: ast.CampNode, it: Any, env: Record, constants: Mapping[str, Any]) -> Any:
    if isinstance(pattern, ast.PConst):
        return pattern.value
    if isinstance(pattern, ast.PIt):
        return it
    if isinstance(pattern, ast.PEnv):
        return env
    if isinstance(pattern, ast.PGetConstant):
        if pattern.cname not in constants:
            raise EvalError("unknown database constant %r" % pattern.cname)
        return constants[pattern.cname]
    if isinstance(pattern, ast.PUnop):
        value = _eval(pattern.arg, it, env, constants)
        try:
            return pattern.op.apply(value)
        except DataError as exc:
            raise EvalError(str(exc)) from exc
    if isinstance(pattern, ast.PBinop):
        left = _eval(pattern.left, it, env, constants)
        right = _eval(pattern.right, it, env, constants)
        try:
            return pattern.op.apply(left, right)
        except DataError as exc:
            raise EvalError(str(exc)) from exc
    if isinstance(pattern, ast.PLetIt):
        new_it = _eval(pattern.defn, it, env, constants)
        return _eval(pattern.body, new_it, env, constants)
    if isinstance(pattern, ast.PLetEnv):
        bindings = _eval(pattern.defn, it, env, constants)
        if not isinstance(bindings, Record):
            raise EvalError("let env += expects a record, got %r" % (bindings,))
        merged = env.merge_concat(bindings)
        if not merged:
            raise MatchFail("incompatible bindings %r vs %r" % (env, bindings))
        return _eval(pattern.body, it, merged.items[0], constants)
    if isinstance(pattern, ast.PMap):
        if not isinstance(it, Bag):
            raise EvalError("map expects the datum to be a bag, got %r" % (it,))
        out = []
        for item in it:
            try:
                out.append(_eval(pattern.body, item, env, constants))
            except MatchFail:
                continue
        return Bag(out)
    if isinstance(pattern, ast.PAssert):
        verdict = _eval(pattern.body, it, env, constants)
        if not isinstance(verdict, bool):
            raise EvalError("assert expects a boolean, got %r" % (verdict,))
        if not verdict:
            raise MatchFail("assertion failed")
        return Record({})
    if isinstance(pattern, ast.POrElse):
        try:
            return _eval(pattern.left, it, env, constants)
        except MatchFail:
            return _eval(pattern.right, it, env, constants)
    raise EvalError("unknown CAMP node %r" % (pattern,))
