"""CAMP: the Calculus for Aggregating Matching Patterns (paper §7)."""

from repro.camp.ast import (
    CampNode,
    PAssert,
    PBinop,
    PConst,
    PEnv,
    PGetConstant,
    PIt,
    PLetEnv,
    PLetIt,
    PMap,
    POrElse,
    PUnop,
)
from repro.camp.eval import MatchFail, eval_camp, matches
from repro.camp.pretty import pretty

__all__ = [
    "CampNode",
    "MatchFail",
    "PAssert",
    "PBinop",
    "PConst",
    "PEnv",
    "PGetConstant",
    "PIt",
    "PLetEnv",
    "PLetIt",
    "PMap",
    "POrElse",
    "PUnop",
    "eval_camp",
    "matches",
    "pretty",
]
